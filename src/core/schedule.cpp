#include "core/schedule.h"

#include <array>
#include <limits>

#include "common/logging.h"

namespace mirage {
namespace core {

namespace {

/**
 * Generic scheduler over any performance model exposing
 * gemm(shape, dataflow, count) -> GemmPerf.
 */
template <typename PerfModel>
ScheduleResult
scheduleImpl(const PerfModel &model, const std::vector<models::GemmTask> &tasks,
             arch::DataflowPolicy policy,
             const std::vector<arch::Dataflow> &dataflows)
{
    using arch::Dataflow;
    using arch::DataflowPolicy;
    using arch::GemmPerf;
    using arch::TrainingOp;

    ScheduleResult result;
    result.tasks.reserve(tasks.size());

    auto fixed_df = [&](DataflowPolicy p) -> Dataflow {
        switch (p) {
          case DataflowPolicy::FixedDF1: return Dataflow::DF1;
          case DataflowPolicy::FixedDF2: return Dataflow::DF2;
          case DataflowPolicy::FixedDF3: return Dataflow::DF3;
          default: MIRAGE_PANIC("not a fixed policy");
        }
    };

    // OPT1: pick the best *fixed* dataflow per training-op type by total
    // time across all tasks of that op (paper Sec. VI-A3).
    std::array<Dataflow, 3> opt1_choice = {Dataflow::DF1, Dataflow::DF1,
                                           Dataflow::DF1};
    if (policy == DataflowPolicy::OPT1) {
        for (TrainingOp op : arch::kTrainingOps) {
            double best_time = std::numeric_limits<double>::infinity();
            Dataflow best_df = dataflows.front();
            for (Dataflow df : dataflows) {
                double total = 0.0;
                bool ok = true;
                for (const models::GemmTask &t : tasks) {
                    if (t.op != op)
                        continue;
                    const GemmPerf p = model.gemm(t.shape, df, t.count);
                    if (!p.supported) {
                        ok = false;
                        break;
                    }
                    total += p.time_s;
                }
                if (ok && total < best_time) {
                    best_time = total;
                    best_df = df;
                }
            }
            opt1_choice[static_cast<size_t>(op)] = best_df;
        }
    }

    double util_weighted = 0.0;
    for (const models::GemmTask &t : tasks) {
        ScheduledTask st;
        st.task = t;
        switch (policy) {
          case DataflowPolicy::FixedDF1:
          case DataflowPolicy::FixedDF2:
          case DataflowPolicy::FixedDF3:
            st.dataflow = fixed_df(policy);
            st.perf = model.gemm(t.shape, st.dataflow, t.count);
            break;
          case DataflowPolicy::OPT1:
            st.dataflow = opt1_choice[static_cast<size_t>(t.op)];
            st.perf = model.gemm(t.shape, st.dataflow, t.count);
            break;
          case DataflowPolicy::OPT2: {
            double best_time = std::numeric_limits<double>::infinity();
            for (arch::Dataflow df : dataflows) {
                const GemmPerf p = model.gemm(t.shape, df, t.count);
                if (p.supported && p.time_s < best_time) {
                    best_time = p.time_s;
                    st.dataflow = df;
                    st.perf = p;
                }
            }
            break;
          }
        }
        if (!st.perf.supported) {
            MIRAGE_FATAL("dataflow ", arch::toString(st.dataflow),
                         " is not supported on this accelerator");
        }
        result.total_time_s += st.perf.time_s;
        result.total_macs += st.perf.macs;
        util_weighted +=
            st.perf.spatial_util * static_cast<double>(st.perf.macs);
        result.tasks.push_back(std::move(st));
    }
    result.avg_spatial_util =
        result.total_macs > 0
            ? util_weighted / static_cast<double>(result.total_macs)
            : 0.0;
    return result;
}

} // namespace

ScheduleResult
scheduleMirage(const arch::MiragePerfModel &model,
               const std::vector<models::GemmTask> &tasks,
               arch::DataflowPolicy policy)
{
    if (policy == arch::DataflowPolicy::FixedDF3)
        MIRAGE_FATAL("DF3 requires per-cycle phase-shifter reprogramming and "
                     "is not supported on Mirage (Sec. VI-A3)");
    return scheduleImpl(model, tasks, policy,
                        {arch::Dataflow::DF1, arch::Dataflow::DF2});
}

ScheduleResult
scheduleSystolic(const arch::SystolicPerfModel &model,
                 const std::vector<models::GemmTask> &tasks,
                 arch::DataflowPolicy policy)
{
    return scheduleImpl(
        model, tasks, policy,
        {arch::Dataflow::DF1, arch::Dataflow::DF2, arch::Dataflow::DF3});
}

} // namespace core
} // namespace mirage
