#ifndef MIRAGE_CORE_MIRAGE_H
#define MIRAGE_CORE_MIRAGE_H

/**
 * @file
 * Top-level public API: a MirageAccelerator instance bundles the
 * functional numerics (BFP + RNS, optionally the full photonic pipeline),
 * the analytic performance model and the power/area model behind one
 * object — what a downstream user of this library instantiates first.
 */

#include <memory>
#include <span>
#include <vector>

#include "arch/config.h"
#include "arch/energy_model.h"
#include "arch/perf_model.h"
#include "core/schedule.h"
#include "models/zoo.h"
#include "nn/gemm_backend.h"

namespace mirage {
namespace core {

/** How functional GEMMs are executed. */
enum class ExecutionMode
{
    /// BFP + RNS integer emulation (bit-identical to the photonic pipeline
    /// with noise off; fast).
    Emulated,
    /// Full phase-domain simulation on MDPU/MMVMU device models (slow;
    /// supports noise injection).
    Photonic,
};

/**
 * Estimated execution of one model (training step or inference pass).
 *
 * Unit contract (single source of truth — validateUnits() asserts it):
 * every field is SI. `time_s` is seconds, the power fields are watts,
 * `energy_j` is joules and MUST equal compute_power_w * time_s (the
 * Fig. 8 compute scope — SRAM is excluded from energy on purpose), and
 * `edp` is joule-seconds and MUST equal energy_j * time_s.
 */
struct PerformanceReport
{
    std::string model_name;
    double time_s = 0.0;
    int64_t macs = 0;
    double avg_spatial_util = 0.0;
    double compute_power_w = 0.0; ///< Non-SRAM power [W] (Fig. 8 scope).
    double total_power_w = 0.0;   ///< Including SRAM [W] (Fig. 9 scope).
    double energy_j = 0.0;        ///< compute_power_w * time_s [J].
    double edp = 0.0;             ///< energy_j * time_s [J*s].

    /** Effective throughput [MAC/s]. */
    double macsPerSecond() const
    {
        return time_s > 0 ? static_cast<double>(macs) / time_s : 0.0;
    }

    /**
     * Panics unless the unit contract above holds (energy_j and edp
     * consistent with time_s and compute_power_w, totals ordered). Called
     * by every report producer; benchmarks may call it on hand-built
     * reports too.
     */
    void validateUnits() const;
};

/** The Mirage accelerator: numerics + performance + power in one handle. */
class MirageAccelerator
{
  public:
    /** Builds an accelerator with the paper's default configuration. */
    explicit MirageAccelerator(arch::MirageConfig cfg = {});

    const arch::MirageConfig &config() const { return cfg_; }

    /**
     * Functional FP32 GEMM through Mirage's numerics:
     * C[m x n] = A[m x k] * B[k x n].
     */
    std::vector<float> gemm(const std::vector<float> &a,
                            const std::vector<float> &b, int m, int k, int n,
                            ExecutionMode mode = ExecutionMode::Emulated);

    /**
     * Span overload writing into caller storage (m*n elements); the
     * allocation-free hot path used by the runtime engine's shard loop.
     */
    void gemm(std::span<const float> a, std::span<const float> b,
              std::span<float> out, int m, int k, int n,
              ExecutionMode mode = ExecutionMode::Emulated);

    /**
     * A GEMM backend bound to this accelerator's numerics, for plugging
     * into the nn:: training framework.
     */
    nn::GemmBackend *backend(ExecutionMode mode = ExecutionMode::Emulated);

    /** Estimated cost of one training step (3 GEMMs per layer). */
    PerformanceReport estimateTraining(
        const models::ModelShape &model, int64_t batch,
        arch::DataflowPolicy policy = arch::DataflowPolicy::OPT2) const;

    /** Estimated cost of one inference pass (forward GEMMs only). */
    PerformanceReport estimateInference(
        const models::ModelShape &model, int64_t batch,
        arch::DataflowPolicy policy = arch::DataflowPolicy::OPT2) const;

    /** Power/area/efficiency summary (Table II, Fig. 9). */
    arch::MirageSummary summary() const;

    /** The underlying analytic performance model. */
    const arch::MiragePerfModel &perfModel() const { return perf_; }

  private:
    PerformanceReport report(const models::ModelShape &model,
                             const std::vector<models::GemmTask> &tasks,
                             arch::DataflowPolicy policy) const;

    arch::MirageConfig cfg_;
    arch::MiragePerfModel perf_;
    arch::MirageEnergyModel energy_;
    std::unique_ptr<nn::GemmBackend> emulated_backend_;
    std::unique_ptr<nn::GemmBackend> photonic_backend_;
};

} // namespace core
} // namespace mirage

#endif // MIRAGE_CORE_MIRAGE_H
