#ifndef MIRAGE_RNS_MODULAR_GEMM_H
#define MIRAGE_RNS_MODULAR_GEMM_H

/**
 * @file
 * Reference integer GEMM in the RNS domain (paper Sec. III): the signed
 * operand matrices are forward-converted, one modular GEMM runs per modulus,
 * and the residue outputs are reverse-converted. This is the bit-exact
 * golden model that the photonic phase-domain simulation must match.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "rns/conversion.h"
#include "rns/moduli_set.h"

namespace mirage {
namespace rns {

/**
 * C = A * B (mod m) on residue matrices stored row-major.
 * A is MxK, B is KxN, C is MxN (c must be pre-sized to m*n).
 *
 * The kernel is register/cache blocked (4-row x 256-column panels) and
 * draws its accumulators from the executing thread's Workspace, so the
 * steady state performs no heap allocation. Blocking only regroups exact
 * integer arithmetic — results are bit-identical to the naive triple loop
 * at every thread count.
 */
void modularGemm(std::span<const Residue> a, std::span<const Residue> b,
                 std::span<Residue> c, int m_rows, int k_depth, int n_cols,
                 uint64_t modulus);

/** Vector convenience wrapper: resizes `c` and calls the span kernel. */
void modularGemm(const std::vector<Residue> &a, const std::vector<Residue> &b,
                 std::vector<Residue> &c, int m_rows, int k_depth, int n_cols,
                 uint64_t modulus);

/** Single modular dot product of two reduced residue vectors. */
Residue modularDot(const Residue *a, const Residue *b, int len, uint64_t modulus);

/**
 * Signed integer GEMM executed residue-wise over a moduli set.
 *
 * The caller is responsible for Eq. (13): every output element must fit in
 * [-psi, psi]. Violations are a *user* configuration error and are reported
 * via fatal() when range checking is enabled.
 */
class RnsGemmEngine
{
  public:
    /** @param check_range verify every output lies in [-psi, psi]. */
    explicit RnsGemmEngine(ModuliSet set, bool check_range = true);

    /** The moduli set in use. */
    const ModuliSet &set() const { return codec_.set(); }

    /**
     * C = A * B on signed matrices (row-major; A MxK, B KxN, C MxN),
     * computed as one modular GEMM per modulus plus reverse conversion.
     * All staging (residue matrices, CRT digits) comes from the executing
     * thread's Workspace — allocation-free once warm.
     */
    void gemm(std::span<const int64_t> a, std::span<const int64_t> b,
              std::span<int64_t> c, int m_rows, int k_depth,
              int n_cols) const;

    /** Allocating convenience wrapper over the span overload. */
    std::vector<int64_t> gemm(const std::vector<int64_t> &a,
                              const std::vector<int64_t> &b,
                              int m_rows, int k_depth, int n_cols) const;

    /** Forward-converts a signed matrix to one residue matrix per modulus. */
    std::vector<std::vector<Residue>>
    forwardMatrix(const std::vector<int64_t> &values) const;

  private:
    RnsCodec codec_;
    bool check_range_;
};

} // namespace rns
} // namespace mirage

#endif // MIRAGE_RNS_MODULAR_GEMM_H
