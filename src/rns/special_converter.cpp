#include "rns/special_converter.h"

#include "common/logging.h"

namespace mirage {
namespace rns {

SpecialConverter::SpecialConverter(int k)
    : k_(k),
      mask_((k >= 1 && k <= 20) ? (uint64_t{1} << k) - 1 : 0),
      m1_(mask_),
      m2_(mask_ + 1),
      m3_(m2_ + 1),
      big_m_(m1_ * m2_ * m3_),
      psi_((big_m_ - 1) / 2),
      pair_w1_(0),
      pair_w3_(0),
      set_(ModuliSet::special(k))
{
    if (k < 2 || k > 20)
        MIRAGE_FATAL("special converter requires 2 <= k <= 20, got ", k);

    // CRT over the co-prime pair (m1, m3) with product m1*m3 = 2^{2k} - 1:
    // Y = (y1 * w1 + y3 * w3) mod (m1 * m3).
    const uint64_t pair_m = m1_ * m3_;
    const uint64_t t1 = invMod(m3_ % m1_, m1_); // inv(m3) mod m1
    const uint64_t t3 = invMod(m1_ % m3_, m3_); // inv(m1) mod m3
    pair_w1_ = mulMod(m3_ % pair_m, t1, pair_m);
    pair_w3_ = mulMod(m1_ % pair_m, t3, pair_m);
}

uint64_t
SpecialConverter::modMersenne(uint64_t a) const
{
    // Sum the k-bit chunks with end-around carry: 2^k === 1 (mod 2^k - 1).
    uint64_t s = 0;
    while (a > 0) {
        s += a & mask_;
        a >>= k_;
    }
    // Folding strictly reduces any s >= 2^k; a final exact hit on m1 is the
    // zero residue.
    while (s > m1_)
        s = (s & mask_) + (s >> k_);
    return (s == m1_) ? 0 : s;
}

uint64_t
SpecialConverter::modFermat(uint64_t a) const
{
    // Alternate-sign chunk folding: 2^k === -1 (mod 2^k + 1).
    int64_t s = 0;
    int sign = 1;
    while (a > 0) {
        s += sign * static_cast<int64_t>(a & mask_);
        a >>= k_;
        sign = -sign;
    }
    int64_t m = static_cast<int64_t>(m3_);
    s %= m;
    if (s < 0)
        s += m;
    return static_cast<uint64_t>(s);
}

ResidueVector
SpecialConverter::forward(uint64_t a) const
{
    return {modMersenne(a), modPowerOfTwo(a), modFermat(a)};
}

ResidueVector
SpecialConverter::forwardSigned(int64_t a) const
{
    MIRAGE_ASSERT(set_.inSignedRange(a), "value outside signed RNS range");
    if (a >= 0)
        return forward(static_cast<uint64_t>(a));
    // X = a + M; compute residues of the magnitude and negate per modulus.
    const uint64_t mag = static_cast<uint64_t>(-a);
    ResidueVector r = forward(mag);
    r[0] = (r[0] == 0) ? 0 : m1_ - r[0];
    r[1] = (r[1] == 0) ? 0 : m2_ - r[1];
    r[2] = (r[2] == 0) ? 0 : m3_ - r[2];
    return r;
}

uint64_t
SpecialConverter::reverse(const ResidueVector &r) const
{
    MIRAGE_ASSERT(r.size() == 3, "special set has exactly three residues");
    const uint64_t r1 = r[0], r2 = r[1], r3 = r[2];
    MIRAGE_ASSERT(r1 < m1_ && r2 < m2_ && r3 < m3_, "residue not reduced");

    // X = r2 + 2^k * Y. Derive Y's residues over (m1, m3):
    //   Y === (r1 - r2) * inv(2^k) === (r1 - r2)        (mod 2^k - 1)
    //   Y === (r3 - r2) * inv(2^k) === (r2 - r3)        (mod 2^k + 1)
    const uint64_t y1 = subMod(r1 % m1_, r2 % m1_, m1_);
    const uint64_t y3 = subMod(r2 % m3_, r3 % m3_, m3_);

    const uint64_t pair_m = m1_ * m3_;
    uint64_t y = addMod(mulMod(pair_w1_, y1, pair_m),
                        mulMod(pair_w3_, y3, pair_m), pair_m);
    return r2 + (y << k_);
}

int64_t
SpecialConverter::reverseSigned(const ResidueVector &r) const
{
    const uint64_t x = reverse(r);
    if (x <= psi_)
        return static_cast<int64_t>(x);
    return static_cast<int64_t>(x) - static_cast<int64_t>(big_m_);
}

} // namespace rns
} // namespace mirage
