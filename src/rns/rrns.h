#ifndef MIRAGE_RNS_RRNS_H
#define MIRAGE_RNS_RRNS_H

/**
 * @file
 * Redundant RNS (RRNS) error detection and correction (paper Sec. VI-E):
 * appending r redundant moduli to the base set lets the decoder detect up to
 * r faulty residues and correct up to floor(r/2) of them by majority logic
 * over subset reconstructions.
 */

#include <cstdint>
#include <vector>

#include "rns/conversion.h"
#include "rns/moduli_set.h"

namespace mirage {
namespace rns {

/** Outcome of an RRNS decode. */
struct RrnsDecodeResult
{
    int64_t value = 0;            ///< Best reconstruction (signed).
    bool error_detected = false;  ///< Residues were inconsistent.
    bool corrected = false;       ///< A consistent correction was found.
    /// Indices (into the extended residue vector) diagnosed as faulty.
    std::vector<size_t> faulty;
};

/**
 * Redundant RNS codec: encodes over base + redundant moduli; decodes with
 * single-residue error correction when enough redundancy exists.
 */
class RedundantRns
{
  public:
    /**
     * @param base       moduli carrying information; the legitimate range is
     *                   the base set's [-psi, psi].
     * @param redundant  extra co-prime moduli used purely for redundancy.
     */
    RedundantRns(ModuliSet base, std::vector<uint64_t> redundant);

    /** Base (information) moduli set. */
    const ModuliSet &baseSet() const { return base_; }

    /** Extended set (base followed by redundant moduli). */
    const ModuliSet &extendedSet() const { return extended_codec_.set(); }

    /** Number of redundant moduli. */
    size_t redundancy() const { return extendedSet().count() - base_.count(); }

    /** Encodes a signed value in the base range over the extended set. */
    ResidueVector encode(int64_t x) const;

    /**
     * Decodes with error detection/correction. A residue vector is
     * *consistent* when the full-set reconstruction lies in the legitimate
     * (base) range. On inconsistency, every leave-one-out subset is tried;
     * a unique subset whose reconstruction is legitimate and agrees with all
     * remaining residues identifies the faulty digit.
     */
    RrnsDecodeResult decode(const ResidueVector &r) const;

  private:
    /** True when an extended-range value X lies in the legitimate range. */
    bool legitimate(uint128 x) const;

    /** Maps a legitimate extended-range value to signed. */
    int64_t extendedToSigned(uint128 x) const;

    ModuliSet base_;
    RnsCodec extended_codec_;
    /// Leave-one-out codecs, index i excludes modulus i.
    std::vector<RnsCodec> subset_codecs_;
};

} // namespace rns
} // namespace mirage

#endif // MIRAGE_RNS_RRNS_H
