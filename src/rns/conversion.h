#ifndef MIRAGE_RNS_CONVERSION_H
#define MIRAGE_RNS_CONVERSION_H

/**
 * @file
 * Forward (binary -> residues) and reverse (residues -> binary) conversion.
 *
 * Two independent reverse algorithms are provided — the Chinese Remainder
 * Theorem (Eq. (5) of the paper) and mixed-radix conversion — so that each
 * can be property-tested against the other.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "rns/moduli_set.h"

namespace mirage {
namespace rns {

/**
 * Encoder/decoder between signed binary integers and residue vectors for a
 * fixed moduli set. CRT constants (M_i, T_i of Eq. (5)) are precomputed at
 * construction.
 */
class RnsCodec
{
  public:
    /** Builds the codec and precomputes CRT and mixed-radix constants. */
    explicit RnsCodec(ModuliSet set);

    /** The moduli set this codec operates over. */
    const ModuliSet &set() const { return set_; }

    /**
     * Forward conversion of a signed value: x is reduced into [0, M) and
     * each residue x_i = |X|_{m_i} is emitted. Panics when |x| > psi, since
     * such a value cannot be uniquely recovered.
     */
    ResidueVector encode(int64_t x) const;

    /** Forward conversion of an unsigned value already in [0, M). */
    ResidueVector encodeUnsigned(uint64_t x) const;

    /**
     * Reverse conversion via the CRT (Eq. (5)), mapping the result back to
     * the symmetric signed range [-psi, psi]. Accepts any contiguous digit
     * view (a ResidueVector converts implicitly), so hot loops can decode
     * straight out of workspace scratch without building a vector.
     */
    int64_t decode(std::span<const Residue> r) const;

    /** Reverse conversion via the CRT without the signed mapping. */
    uint128 decodeUnsigned(std::span<const Residue> r) const;

    /**
     * Reverse conversion via mixed-radix digits — an independent algorithm
     * used to cross-check the CRT path (uses only small-modulus ops).
     */
    int64_t decodeMixedRadix(const ResidueVector &r) const;

    /** Maps an unsigned X in [0, M) to the symmetric signed range. */
    int64_t toSigned(uint128 x) const;

  private:
    ModuliSet set_;
    /// CRT weights w_i = (M_i * T_i) mod M, so X = sum(x_i * w_i) mod M.
    std::vector<uint128> crt_weights_;
    /// Inverses inv(m_i) mod m_j for i < j, used by mixed-radix conversion.
    std::vector<std::vector<uint64_t>> mrc_inverses_;
};

/**
 * Process-wide codec cache keyed by the moduli vector. Hot paths that are
 * handed a ModuliSet per call (e.g. formatGemm) use this instead of
 * rebuilding CRT constants — a cache hit performs no heap allocation.
 * Thread-safe; cached codecs live for the process lifetime.
 */
const RnsCodec &cachedCodec(const ModuliSet &set);

} // namespace rns
} // namespace mirage

#endif // MIRAGE_RNS_CONVERSION_H
