#include "rns/modular_gemm.h"

#include "common/logging.h"
#include "runtime/thread_pool.h"

namespace mirage {
namespace rns {

namespace {

/// Output rows per parallelFor block (fixed — see thread_pool.h for the
/// determinism contract). Integer arithmetic is exact, so row-parallel
/// execution is trivially bit-identical to serial.
constexpr int64_t kRowGrain = 4;
constexpr int64_t kDecodeGrain = 256;
/// Below this approximate op count the loops run serially (no sync cost).
constexpr int64_t kMinParallelWork = 16384;

} // namespace

Residue
modularDot(const Residue *a, const Residue *b, int len, uint64_t modulus)
{
    // Products of residues < 2^21 each and dot lengths < 2^22 stay exact in
    // 64 bits, so we accumulate raw and reduce once for the common case.
    const bool small = modulus < (uint64_t{1} << 21) && len < (1 << 22);
    if (small) {
        uint64_t acc = 0;
        for (int i = 0; i < len; ++i)
            acc += a[i] * b[i];
        return acc % modulus;
    }
    Residue acc = 0;
    for (int i = 0; i < len; ++i)
        acc = addMod(acc, mulMod(a[i], b[i], modulus), modulus);
    return acc;
}

void
modularGemm(const std::vector<Residue> &a, const std::vector<Residue> &b,
            std::vector<Residue> &c, int m_rows, int k_depth, int n_cols,
            uint64_t modulus)
{
    MIRAGE_ASSERT(a.size() == static_cast<size_t>(m_rows) * k_depth,
                  "A shape mismatch");
    MIRAGE_ASSERT(b.size() == static_cast<size_t>(k_depth) * n_cols,
                  "B shape mismatch");
    c.assign(static_cast<size_t>(m_rows) * n_cols, 0);

    // Row-major ikj loop: B rows are streamed, keeping accumulation exact in
    // 64 bits with a periodic reduction. Output rows are independent, so
    // they shard across the thread pool.
    const uint64_t reduce_every =
        (modulus < (uint64_t{1} << 21)) ? (uint64_t{1} << 20) : 1;
    runtime::parallelFor(
        m_rows,
        runtime::serialBelow(m_rows, kRowGrain,
                             static_cast<int64_t>(m_rows) * k_depth * n_cols,
                             kMinParallelWork),
        [&](int64_t i0, int64_t i1) {
        std::vector<uint64_t> acc(static_cast<size_t>(n_cols), 0);
        for (int64_t i = i0; i < i1; ++i) {
            std::fill(acc.begin(), acc.end(), 0);
            uint64_t since_reduce = 0;
            for (int k = 0; k < k_depth; ++k) {
                const uint64_t a_ik = a[static_cast<size_t>(i) * k_depth + k];
                const Residue *b_row = &b[static_cast<size_t>(k) * n_cols];
                if (a_ik == 0)
                    continue;
                for (int j = 0; j < n_cols; ++j)
                    acc[static_cast<size_t>(j)] += a_ik * b_row[j];
                if (++since_reduce >= reduce_every) {
                    for (int j = 0; j < n_cols; ++j)
                        acc[static_cast<size_t>(j)] %= modulus;
                    since_reduce = 0;
                }
            }
            for (int j = 0; j < n_cols; ++j)
                c[static_cast<size_t>(i) * n_cols + j] =
                    acc[static_cast<size_t>(j)] % modulus;
        }
    });
}

RnsGemmEngine::RnsGemmEngine(ModuliSet set, bool check_range)
    : codec_(std::move(set)), check_range_(check_range)
{
}

std::vector<std::vector<Residue>>
RnsGemmEngine::forwardMatrix(const std::vector<int64_t> &values) const
{
    const ModuliSet &set = codec_.set();
    std::vector<std::vector<Residue>> residues(
        set.count(), std::vector<Residue>(values.size()));
    for (size_t i = 0; i < set.count(); ++i) {
        const uint64_t m = set.modulus(i);
        for (size_t v = 0; v < values.size(); ++v)
            residues[i][v] = reduceSigned(values[v], m);
    }
    return residues;
}

std::vector<int64_t>
RnsGemmEngine::gemm(const std::vector<int64_t> &a, const std::vector<int64_t> &b,
                    int m_rows, int k_depth, int n_cols) const
{
    const ModuliSet &set = codec_.set();
    const auto a_res = forwardMatrix(a);
    const auto b_res = forwardMatrix(b);

    std::vector<std::vector<Residue>> c_res(set.count());
    for (size_t i = 0; i < set.count(); ++i)
        modularGemm(a_res[i], b_res[i], c_res[i], m_rows, k_depth, n_cols,
                    set.modulus(i));

    const size_t total = static_cast<size_t>(m_rows) * n_cols;
    std::vector<int64_t> c(total);
    // CRT reverse conversion is per-element pure (decode is const), so the
    // output vector shards across the pool.
    runtime::parallelFor(
        static_cast<int64_t>(total),
        runtime::serialBelow(static_cast<int64_t>(total), kDecodeGrain,
                             static_cast<int64_t>(total * set.count()),
                             kMinParallelWork),
        [&](int64_t e0, int64_t e1) {
            ResidueVector digits(set.count());
            for (int64_t e = e0; e < e1; ++e) {
                for (size_t i = 0; i < set.count(); ++i)
                    digits[i] = c_res[i][static_cast<size_t>(e)];
                c[static_cast<size_t>(e)] = codec_.decode(digits);
            }
        });

    if (check_range_) {
        // Cross-check against exact 64-bit integer accumulation: a mismatch
        // means the output overflowed the RNS dynamic range, i.e. the caller
        // violated Eq. (13).
        for (int i = 0; i < m_rows; ++i) {
            for (int j = 0; j < n_cols; ++j) {
                int64_t exact = 0;
                for (int k = 0; k < k_depth; ++k) {
                    exact += a[static_cast<size_t>(i) * k_depth + k] *
                             b[static_cast<size_t>(k) * n_cols + j];
                }
                if (exact != c[static_cast<size_t>(i) * n_cols + j]) {
                    MIRAGE_FATAL("RNS dynamic range exceeded at (", i, ",", j,
                                 "): exact=", exact, " rns=",
                                 c[static_cast<size_t>(i) * n_cols + j],
                                 " — moduli set too small for this workload",
                                 " (Eq. 13)");
                }
            }
        }
    }
    return c;
}

} // namespace rns
} // namespace mirage
