#include "rns/modular_gemm.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/simd.h"
#include "common/workspace.h"
#include "obs/fidelity.h"
#include "runtime/thread_pool.h"

namespace mirage {
namespace rns {

namespace {

/// Output rows per parallelFor block (fixed — see thread_pool.h for the
/// determinism contract). Integer arithmetic is exact, so row-parallel
/// execution is trivially bit-identical to serial. A multiple of kRowBlock
/// so every parallel block runs the 4-row unrolled panel (a grain of 4
/// left odd-sized tail blocks on the slow path under parallel splits).
constexpr int64_t kRowGrain = 8;
constexpr int64_t kDecodeGrain = 256;
/// Below this approximate op count the loops run serially (no sync cost).
/// ~64k ops is a few microseconds — not worth waking workers for.
constexpr int64_t kMinParallelWork = 65536;

/// Register-blocked kernel shape: kRowBlock output rows share every load of
/// a B-row segment, and the j loop is tiled so the accumulator panel stays
/// in L1. Blocking only regroups exact integer arithmetic, so results are
/// bit-identical to the naive loop.
constexpr int kRowBlock = 4;
constexpr int kColTile = 256;

/// How many raw products a < 2^21 modulus can accumulate in 64 bits before
/// a reduction is needed: (2^21 - 1)^2 * 2^20 < 2^63.
constexpr uint64_t kSmallModulusReduceEvery = uint64_t{1} << 20;

/**
 * One i-block x j-tile panel: acc[r][j] += a[ib+r][k] * b[k][j0+j] over all
 * k, with periodic reductions. `acc` is row-major ib_rows x jt.
 */
void
gemmPanel(const Residue *a, const Residue *b, Residue *c, int ib, int ib_rows,
          int j0, int jt, int k_depth, int n_cols, uint64_t modulus,
          uint64_t reduce_every, uint64_t *acc)
{
    std::memset(acc, 0,
                static_cast<size_t>(ib_rows) * jt * sizeof(uint64_t));
    if (ib_rows == kRowBlock && reduce_every > 1) {
        // Register-tiled simd panel (common/simd.h): the accumulator tile
        // lives in vector registers across each segment instead of
        // round-tripping L1 per k step. Segments are capped at
        // reduce_every k-steps with a reduction between them — the same
        // overflow bound the per-k loop enforced; all arithmetic is exact
        // (residues < modulus < 2^32, 32x32->64 lane products), so the
        // result is bit-identical to the loop below.
        for (int k0 = 0; k0 < k_depth;) {
            const int seg = static_cast<int>(std::min<uint64_t>(
                reduce_every, static_cast<uint64_t>(k_depth - k0)));
            simd::gemmPanel4U64Lo32(
                &a[static_cast<size_t>(ib) * k_depth + k0], k_depth,
                &b[static_cast<size_t>(k0) * n_cols + j0], n_cols, seg, acc,
                jt);
            k0 += seg;
            if (k0 < k_depth)
                for (int e = 0; e < ib_rows * jt; ++e)
                    acc[e] %= modulus;
        }
    } else {
        // Short row tails and fully-reduced (reduce_every == 1) moduli.
        uint64_t since_reduce = 0;
        for (int k = 0; k < k_depth; ++k) {
            const Residue *b_row = &b[static_cast<size_t>(k) * n_cols + j0];
            for (int r = 0; r < ib_rows; ++r) {
                const uint64_t a_ik =
                    a[static_cast<size_t>(ib + r) * k_depth + k];
                if (a_ik == 0)
                    continue;
                simd::axpyU64Lo32(a_ik, b_row,
                                  acc + static_cast<size_t>(r) * jt, jt);
            }
            if (++since_reduce >= reduce_every) {
                for (int e = 0; e < ib_rows * jt; ++e)
                    acc[e] %= modulus;
                since_reduce = 0;
            }
        }
    }
    for (int r = 0; r < ib_rows; ++r)
        for (int j = 0; j < jt; ++j)
            c[static_cast<size_t>(ib + r) * n_cols + j0 + j] =
                acc[static_cast<size_t>(r) * jt + j] % modulus;
}

} // namespace

Residue
modularDot(const Residue *a, const Residue *b, int len, uint64_t modulus)
{
    // Products of residues < 2^21 each and dot lengths < 2^22 stay exact in
    // 64 bits, so we accumulate raw and reduce once for the common case.
    const bool small = modulus < (uint64_t{1} << 21) && len < (1 << 22);
    if (small) {
        // Count the bound the fast path relies on instead of trusting the
        // magic constants: len products of (modulus-1)^2 must fit in 64
        // bits. (m-1)^2 <= (2^21-1)^2 < 2^42 and len < 2^22, so the product
        // stays below 2^64. The margin is recorded as an always-on runtime
        // observation (fidelity.rns.overflow_margin_min); the debug assert
        // still hard-stops debug builds if the constants are ever loosened.
        obs::fidelity::recordRnsMargin(modulus, len);
        MIRAGE_DASSERT(
            modulus <= 1 ||
                static_cast<uint64_t>(len) <=
                    UINT64_MAX / ((modulus - 1) * (modulus - 1)),
            "modularDot fast path would overflow: len=", len,
            " modulus=", modulus);
        return simd::dotU64Lo32(a, b, len) % modulus;
    }
    obs::fidelity::noteRnsReducedFallback();
    Residue acc = 0;
    for (int i = 0; i < len; ++i)
        acc = addMod(acc, mulMod(a[i], b[i], modulus), modulus);
    return acc;
}

void
modularGemm(std::span<const Residue> a, std::span<const Residue> b,
            std::span<Residue> c, int m_rows, int k_depth, int n_cols,
            uint64_t modulus)
{
    MIRAGE_ASSERT(a.size() == static_cast<size_t>(m_rows) * k_depth,
                  "A shape mismatch");
    MIRAGE_ASSERT(b.size() == static_cast<size_t>(k_depth) * n_cols,
                  "B shape mismatch");
    MIRAGE_ASSERT(c.size() == static_cast<size_t>(m_rows) * n_cols,
                  "C shape mismatch");

    if (modulus >= (uint64_t{1} << 32)) {
        // Huge moduli: acc + (m-1)^2 no longer fits 64 bits, so take the
        // fully reduced (and slow) path. Not a Mirage configuration — the
        // paper's special sets stay far below this.
        obs::fidelity::noteRnsReducedFallback();
        runtime::parallelFor(
            m_rows,
            runtime::serialBelow(m_rows, kRowGrain,
                                 static_cast<int64_t>(m_rows) * k_depth *
                                     n_cols,
                                 kMinParallelWork),
            [&](int64_t i0, int64_t i1) {
                for (int64_t i = i0; i < i1; ++i)
                    for (int j = 0; j < n_cols; ++j) {
                        Residue acc = 0;
                        for (int k = 0; k < k_depth; ++k)
                            acc = addMod(
                                acc,
                                mulMod(a[static_cast<size_t>(i) * k_depth + k],
                                       b[static_cast<size_t>(k) * n_cols + j],
                                       modulus),
                                modulus);
                        c[static_cast<size_t>(i) * n_cols + j] = acc;
                    }
            });
        return;
    }

    // Raw 64-bit accumulation with periodic reduction: small moduli reduce
    // every 2^20 additions, larger (< 2^32) ones after every addition.
    const uint64_t reduce_every = (modulus < (uint64_t{1} << 21))
                                      ? kSmallModulusReduceEvery
                                      : 1;
    // The longest raw run between reductions bounds the headroom; one
    // accounting call per GEMM (not per panel) keeps it out of the hot loop.
    obs::fidelity::recordRnsMargin(
        modulus, static_cast<int64_t>(std::min<uint64_t>(
                     reduce_every, static_cast<uint64_t>(k_depth))));
    runtime::parallelFor(
        m_rows,
        runtime::serialBelow(m_rows, kRowGrain,
                             static_cast<int64_t>(m_rows) * k_depth * n_cols,
                             kMinParallelWork),
        [&](int64_t i0, int64_t i1) {
            Workspace &ws = threadWorkspace();
            Workspace::Scope scope(ws);
            uint64_t *acc =
                ws.alloc<uint64_t>(static_cast<size_t>(kRowBlock) *
                                   std::min(kColTile, n_cols))
                    .data();
            for (int64_t ib = i0; ib < i1; ib += kRowBlock) {
                const int ib_rows =
                    static_cast<int>(std::min<int64_t>(kRowBlock, i1 - ib));
                for (int j0 = 0; j0 < n_cols; j0 += kColTile) {
                    const int jt = std::min(kColTile, n_cols - j0);
                    gemmPanel(a.data(), b.data(), c.data(),
                              static_cast<int>(ib), ib_rows, j0, jt, k_depth,
                              n_cols, modulus, reduce_every, acc);
                }
            }
        });
}

void
modularGemm(const std::vector<Residue> &a, const std::vector<Residue> &b,
            std::vector<Residue> &c, int m_rows, int k_depth, int n_cols,
            uint64_t modulus)
{
    c.resize(static_cast<size_t>(m_rows) * n_cols);
    modularGemm(std::span<const Residue>(a), std::span<const Residue>(b),
                std::span<Residue>(c), m_rows, k_depth, n_cols, modulus);
}

RnsGemmEngine::RnsGemmEngine(ModuliSet set, bool check_range)
    : codec_(std::move(set)), check_range_(check_range)
{
}

std::vector<std::vector<Residue>>
RnsGemmEngine::forwardMatrix(const std::vector<int64_t> &values) const
{
    const ModuliSet &set = codec_.set();
    std::vector<std::vector<Residue>> residues(
        set.count(), std::vector<Residue>(values.size()));
    for (size_t i = 0; i < set.count(); ++i) {
        const uint64_t m = set.modulus(i);
        for (size_t v = 0; v < values.size(); ++v)
            residues[i][v] = reduceSigned(values[v], m);
    }
    return residues;
}

void
RnsGemmEngine::gemm(std::span<const int64_t> a, std::span<const int64_t> b,
                    std::span<int64_t> c, int m_rows, int k_depth,
                    int n_cols) const
{
    const ModuliSet &set = codec_.set();
    const size_t count = set.count();
    const size_t total = static_cast<size_t>(m_rows) * n_cols;
    MIRAGE_ASSERT(c.size() == total, "C shape mismatch");

    // All staging (forward residue matrices, per-modulus outputs) lives in
    // this thread's arena for the duration of the call.
    Workspace &ws = threadWorkspace();
    Workspace::Scope scope(ws);
    std::span<Residue> a_res = ws.alloc<Residue>(count * a.size());
    std::span<Residue> b_res = ws.alloc<Residue>(count * b.size());
    std::span<Residue> c_res = ws.alloc<Residue>(count * total);
    for (size_t i = 0; i < count; ++i) {
        const uint64_t m = set.modulus(i);
        Residue *ar = &a_res[i * a.size()];
        for (size_t v = 0; v < a.size(); ++v)
            ar[v] = reduceSigned(a[v], m);
        Residue *br = &b_res[i * b.size()];
        for (size_t v = 0; v < b.size(); ++v)
            br[v] = reduceSigned(b[v], m);
    }

    for (size_t i = 0; i < count; ++i)
        modularGemm(a_res.subspan(i * a.size(), a.size()),
                    b_res.subspan(i * b.size(), b.size()),
                    c_res.subspan(i * total, total), m_rows, k_depth, n_cols,
                    set.modulus(i));

    // CRT reverse conversion is per-element pure (decode is const), so the
    // output vector shards across the pool; digit staging comes from each
    // executing thread's own arena.
    runtime::parallelFor(
        static_cast<int64_t>(total),
        runtime::serialBelow(static_cast<int64_t>(total), kDecodeGrain,
                             static_cast<int64_t>(total * count),
                             kMinParallelWork),
        [&](int64_t e0, int64_t e1) {
            Workspace &tws = threadWorkspace();
            Workspace::Scope tscope(tws);
            std::span<Residue> digits = tws.alloc<Residue>(count);
            for (int64_t e = e0; e < e1; ++e) {
                for (size_t i = 0; i < count; ++i)
                    digits[i] = c_res[i * total + static_cast<size_t>(e)];
                c[static_cast<size_t>(e)] = codec_.decode(digits);
            }
        });

    if (check_range_) {
        // Cross-check against exact 64-bit integer accumulation: a mismatch
        // means the output overflowed the RNS dynamic range, i.e. the caller
        // violated Eq. (13).
        for (int i = 0; i < m_rows; ++i) {
            for (int j = 0; j < n_cols; ++j) {
                int64_t exact = 0;
                for (int k = 0; k < k_depth; ++k) {
                    exact += a[static_cast<size_t>(i) * k_depth + k] *
                             b[static_cast<size_t>(k) * n_cols + j];
                }
                if (exact != c[static_cast<size_t>(i) * n_cols + j]) {
                    MIRAGE_FATAL("RNS dynamic range exceeded at (", i, ",", j,
                                 "): exact=", exact, " rns=",
                                 c[static_cast<size_t>(i) * n_cols + j],
                                 " — moduli set too small for this workload",
                                 " (Eq. 13)");
                }
            }
        }
    }
}

std::vector<int64_t>
RnsGemmEngine::gemm(const std::vector<int64_t> &a,
                    const std::vector<int64_t> &b, int m_rows, int k_depth,
                    int n_cols) const
{
    std::vector<int64_t> c(static_cast<size_t>(m_rows) * n_cols);
    gemm(std::span<const int64_t>(a), std::span<const int64_t>(b),
         std::span<int64_t>(c), m_rows, k_depth, n_cols);
    return c;
}

} // namespace rns
} // namespace mirage
