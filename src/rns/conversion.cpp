#include "rns/conversion.h"

#include <map>
#include <memory>
#include <mutex>

#include "common/logging.h"

namespace mirage {
namespace rns {

namespace {

/** (a * b) mod m on 128-bit operands, with m < 2^127 / max(a). */
uint128
mulMod128(uint128 a, uint128 b, uint128 m)
{
    // Russian-peasant multiplication keeps intermediates below 2*m, which is
    // safe because every modulus product we form fits in well under 127 bits.
    uint128 result = 0;
    a %= m;
    while (b > 0) {
        if (b & 1) {
            result += a;
            if (result >= m)
                result -= m;
        }
        a <<= 1;
        if (a >= m)
            a -= m;
        b >>= 1;
    }
    return result;
}

} // namespace

RnsCodec::RnsCodec(ModuliSet set)
    : set_(std::move(set))
{
    const size_t n = set_.count();
    const uint128 big_m = set_.dynamicRange();

    crt_weights_.resize(n);
    for (size_t i = 0; i < n; ++i) {
        const uint64_t m_i = set_.modulus(i);
        const uint128 big_m_i = big_m / m_i;
        const uint64_t mi_mod = static_cast<uint64_t>(big_m_i % m_i);
        const uint64_t t_i = invMod(mi_mod, m_i);
        crt_weights_[i] = mulMod128(big_m_i, t_i, big_m);
    }

    mrc_inverses_.assign(n, std::vector<uint64_t>(n, 0));
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i + 1; j < n; ++j)
            mrc_inverses_[i][j] = invMod(set_.modulus(i) % set_.modulus(j),
                                         set_.modulus(j));
}

ResidueVector
RnsCodec::encode(int64_t x) const
{
    MIRAGE_ASSERT(set_.inSignedRange(x),
                  "value ", x, " outside signed RNS range");
    ResidueVector r(set_.count());
    for (size_t i = 0; i < set_.count(); ++i)
        r[i] = reduceSigned(x, set_.modulus(i));
    return r;
}

ResidueVector
RnsCodec::encodeUnsigned(uint64_t x) const
{
    MIRAGE_ASSERT(static_cast<uint128>(x) < set_.dynamicRange(),
                  "value outside RNS dynamic range");
    ResidueVector r(set_.count());
    for (size_t i = 0; i < set_.count(); ++i)
        r[i] = x % set_.modulus(i);
    return r;
}

uint128
RnsCodec::decodeUnsigned(std::span<const Residue> r) const
{
    MIRAGE_ASSERT(r.size() == set_.count(), "residue vector size mismatch");
    const uint128 big_m = set_.dynamicRange();
    uint128 x = 0;
    for (size_t i = 0; i < set_.count(); ++i) {
        MIRAGE_ASSERT(r[i] < set_.modulus(i), "residue not reduced");
        x += mulMod128(crt_weights_[i], r[i], big_m);
        if (x >= big_m)
            x -= big_m;
    }
    return x;
}

int64_t
RnsCodec::toSigned(uint128 x) const
{
    const uint128 big_m = set_.dynamicRange();
    MIRAGE_ASSERT(x < big_m, "value outside dynamic range");
    if (x <= set_.psi())
        return static_cast<int64_t>(x);
    const uint128 mag = big_m - x;
    return -static_cast<int64_t>(mag);
}

int64_t
RnsCodec::decode(std::span<const Residue> r) const
{
    return toSigned(decodeUnsigned(r));
}

int64_t
RnsCodec::decodeMixedRadix(const ResidueVector &r) const
{
    MIRAGE_ASSERT(r.size() == set_.count(), "residue vector size mismatch");
    const size_t n = set_.count();

    // Mixed-radix digits: a_0 = r_0; a_j derived by peeling off previously
    // resolved digits. X = a_0 + a_1*m_0 + a_2*m_0*m_1 + ...
    std::vector<uint64_t> digits(n);
    for (size_t j = 0; j < n; ++j) {
        const uint64_t m_j = set_.modulus(j);
        uint64_t v = r[j] % m_j;
        for (size_t i = 0; i < j; ++i) {
            v = subMod(v, digits[i] % m_j, m_j);
            v = mulMod(v, mrc_inverses_[i][j], m_j);
        }
        digits[j] = v;
    }

    uint128 x = 0;
    uint128 radix = 1;
    for (size_t j = 0; j < n; ++j) {
        x += radix * digits[j];
        radix *= set_.modulus(j);
    }
    return toSigned(x);
}

const RnsCodec &
cachedCodec(const ModuliSet &set)
{
    static std::mutex mu;
    // Leaked on purpose (see ThreadPool::global for the rationale): the
    // codecs are process-lifetime constants.
    static auto *cache =
        new std::map<std::vector<uint64_t>, std::unique_ptr<RnsCodec>>();
    std::lock_guard<std::mutex> lk(mu);
    auto it = cache->find(set.moduli());
    if (it == cache->end())
        it = cache
                 ->emplace(set.moduli(), std::make_unique<RnsCodec>(set))
                 .first;
    return *it->second;
}

} // namespace rns
} // namespace mirage
