#ifndef MIRAGE_RNS_MODULI_SET_H
#define MIRAGE_RNS_MODULI_SET_H

/**
 * @file
 * A validated set of pairwise co-prime RNS moduli with its dynamic range
 * (M = prod m_i) and the Eq. (13) capacity check used by Mirage's BFP/RNS
 * co-design (Sec. IV-B of the paper).
 */

#include <cstdint>
#include <vector>

#include "rns/modulus.h"

namespace mirage {
namespace rns {

/**
 * Immutable, validated collection of pairwise co-prime moduli.
 *
 * The dynamic range M and the symmetric bound psi = floor((M-1)/2) are
 * precomputed; signed values in [-psi, psi] are uniquely representable.
 */
class ModuliSet
{
  public:
    /**
     * Validates and stores the moduli.
     * Fatal error when a modulus is < 2 or any pair shares a factor.
     */
    explicit ModuliSet(std::vector<uint64_t> moduli);

    /**
     * The paper's special low-cost set {2^k - 1, 2^k, 2^k + 1} (Sec. IV-B).
     * @param k positive integer; the paper uses k = 5 -> {31, 32, 33}.
     */
    static ModuliSet special(int k);

    /** Number of moduli (n). */
    size_t count() const { return moduli_.size(); }

    /** The i-th modulus. */
    uint64_t modulus(size_t i) const { return moduli_[i]; }

    /** All moduli in declaration order. */
    const std::vector<uint64_t> &moduli() const { return moduli_; }

    /** Dynamic range M = prod m_i. */
    uint128 dynamicRange() const { return big_m_; }

    /** Symmetric signed bound psi = floor((M - 1) / 2). */
    uint128 psi() const { return psi_; }

    /** log2(M), the usable output bit width. */
    double log2DynamicRange() const;

    /** Data-converter precision for modulus i: ceil(log2 m_i) bits. */
    int converterBits(size_t i) const;

    /** Largest converterBits() over the set (sets the ADC/DAC width). */
    int maxConverterBits() const;

    /**
     * Eq. (13): checks log2(M) >= 2*(bm + 1) + log2(g) - 1, i.e. the set can
     * hold a dot product of g products of (bm+1)-bit signed operands.
     */
    bool canHoldDotProduct(int bm, int g) const;

    /** True when a signed value fits the symmetric range [-psi, psi]. */
    bool inSignedRange(int64_t x) const;

    /** Minimal k such that special(k) satisfies Eq. (13); paper Sec. VI-A1. */
    static int minSpecialK(int bm, int g);

    bool operator==(const ModuliSet &other) const { return moduli_ == other.moduli_; }

  private:
    std::vector<uint64_t> moduli_;
    uint128 big_m_ = 1;
    uint128 psi_ = 0;
};

} // namespace rns
} // namespace mirage

#endif // MIRAGE_RNS_MODULI_SET_H
