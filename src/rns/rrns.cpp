#include "rns/rrns.h"

#include "common/logging.h"

namespace mirage {
namespace rns {

namespace {

ModuliSet
makeExtended(const ModuliSet &base, const std::vector<uint64_t> &redundant)
{
    std::vector<uint64_t> all = base.moduli();
    all.insert(all.end(), redundant.begin(), redundant.end());
    return ModuliSet(std::move(all)); // validates co-primality of the union
}

ModuliSet
makeSubset(const ModuliSet &extended, size_t excluded)
{
    std::vector<uint64_t> subset;
    for (size_t i = 0; i < extended.count(); ++i)
        if (i != excluded)
            subset.push_back(extended.modulus(i));
    return ModuliSet(std::move(subset));
}

} // namespace

RedundantRns::RedundantRns(ModuliSet base, std::vector<uint64_t> redundant)
    : base_(std::move(base)),
      extended_codec_(makeExtended(base_, redundant))
{
    if (redundant.empty())
        MIRAGE_FATAL("RRNS requires at least one redundant modulus");
    const ModuliSet &ext = extended_codec_.set();
    subset_codecs_.reserve(ext.count());
    for (size_t i = 0; i < ext.count(); ++i)
        subset_codecs_.emplace_back(makeSubset(ext, i));
}

ResidueVector
RedundantRns::encode(int64_t x) const
{
    MIRAGE_ASSERT(base_.inSignedRange(x), "value outside base RNS range");
    return extended_codec_.encode(x);
}

bool
RedundantRns::legitimate(uint128 x) const
{
    const uint128 m_ext = extendedSet().dynamicRange();
    const uint128 psi = base_.psi();
    return x <= psi || x >= m_ext - psi;
}

int64_t
RedundantRns::extendedToSigned(uint128 x) const
{
    const uint128 m_ext = extendedSet().dynamicRange();
    if (x <= base_.psi())
        return static_cast<int64_t>(x);
    return -static_cast<int64_t>(m_ext - x);
}

RrnsDecodeResult
RedundantRns::decode(const ResidueVector &r) const
{
    const ModuliSet &ext = extendedSet();
    MIRAGE_ASSERT(r.size() == ext.count(), "residue vector size mismatch");

    RrnsDecodeResult result;
    const uint128 full = extended_codec_.decodeUnsigned(r);
    if (legitimate(full)) {
        result.value = extendedToSigned(full);
        return result;
    }

    result.error_detected = true;

    // Leave-one-out search: the subset that excludes the faulty residue
    // reconstructs a legitimate value consistent with every kept residue.
    struct Candidate { int64_t value; size_t excluded; };
    std::vector<Candidate> candidates;
    for (size_t skip = 0; skip < ext.count(); ++skip) {
        ResidueVector subset;
        subset.reserve(ext.count() - 1);
        for (size_t i = 0; i < ext.count(); ++i)
            if (i != skip)
                subset.push_back(r[i]);

        const RnsCodec &codec = subset_codecs_[skip];
        const uint128 x = codec.decodeUnsigned(subset);
        const uint128 m_sub = codec.set().dynamicRange();
        const uint128 psi = base_.psi();
        const bool legit = x <= psi || x >= m_sub - psi;
        if (!legit)
            continue;
        const int64_t signed_val =
            (x <= psi) ? static_cast<int64_t>(x) : -static_cast<int64_t>(m_sub - x);

        // The corrected value must reproduce all residues except the skipped
        // one (which is presumed faulty).
        bool consistent = true;
        for (size_t i = 0; i < ext.count() && consistent; ++i) {
            if (i == skip)
                continue;
            consistent = reduceSigned(signed_val, ext.modulus(i)) == r[i];
        }
        if (consistent)
            candidates.push_back({signed_val, skip});
    }

    // All surviving candidates agreeing on one value means unambiguous
    // correction (several subsets may exclude a non-faulty digit yet still
    // reconstruct the same legitimate value).
    if (!candidates.empty()) {
        const int64_t v = candidates.front().value;
        bool unanimous = true;
        for (const Candidate &c : candidates)
            unanimous = unanimous && c.value == v;
        if (unanimous) {
            result.value = v;
            result.corrected = true;
            for (const Candidate &c : candidates) {
                // A digit is reported faulty when the corrected value
                // disagrees with the received residue at that position.
                if (reduceSigned(v, ext.modulus(c.excluded)) != r[c.excluded])
                    result.faulty.push_back(c.excluded);
            }
        }
    }
    return result;
}

} // namespace rns
} // namespace mirage
