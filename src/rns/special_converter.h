#ifndef MIRAGE_RNS_SPECIAL_CONVERTER_H
#define MIRAGE_RNS_SPECIAL_CONVERTER_H

/**
 * @file
 * Shift/add-only converters for the special moduli set {2^k-1, 2^k, 2^k+1}
 * (paper Sec. IV-B, after Hiasat and Wang et al.). These model the cheap
 * dedicated conversion circuits on Mirage's electronic chiplet: the forward
 * direction folds k-bit chunks, the reverse direction is a two-level CRT that
 * only ever manipulates (2k)-bit quantities.
 */

#include <cstdint>

#include "rns/moduli_set.h"

namespace mirage {
namespace rns {

/**
 * Fast converter bound to one value of k. All operations stay in 64-bit
 * words, mirroring the adder/shifter structure of the hardware unit.
 */
class SpecialConverter
{
  public:
    /** Builds the converter for {2^k - 1, 2^k, 2^k + 1}. */
    explicit SpecialConverter(int k);

    /** The parameter k. */
    int k() const { return k_; }

    /** The matching validated ModuliSet (m1 = 2^k-1, m2 = 2^k, m3 = 2^k+1). */
    const ModuliSet &set() const { return set_; }

    /** |a| mod (2^k - 1) by end-around-carry folding of k-bit chunks. */
    uint64_t modMersenne(uint64_t a) const;

    /** |a| mod 2^k: a bit mask. */
    uint64_t modPowerOfTwo(uint64_t a) const { return a & mask_; }

    /** |a| mod (2^k + 1) by alternating-sign folding of k-bit chunks. */
    uint64_t modFermat(uint64_t a) const;

    /** Forward conversion of an unsigned value to the three residues. */
    ResidueVector forward(uint64_t a) const;

    /** Forward conversion of a signed value (two's-complement handling). */
    ResidueVector forwardSigned(int64_t a) const;

    /**
     * Reverse conversion to the unsigned range [0, M). Implemented as the
     * two-level scheme: X = r2 + 2^k * Y with Y recovered from the CRT pair
     * (2^k - 1, 2^k + 1), using that 2^k === 1 mod (2^k-1) and
     * 2^k === -1 mod (2^k+1).
     */
    uint64_t reverse(const ResidueVector &r) const;

    /** Reverse conversion mapped to the symmetric signed range. */
    int64_t reverseSigned(const ResidueVector &r) const;

  private:
    int k_;
    uint64_t mask_;    ///< 2^k - 1
    uint64_t m1_;      ///< 2^k - 1
    uint64_t m2_;      ///< 2^k
    uint64_t m3_;      ///< 2^k + 1
    uint64_t big_m_;   ///< m1 * m2 * m3 = 2^{3k} - 2^k
    uint64_t psi_;     ///< (M - 1) / 2
    /// CRT reconstruction constants for the pair (m1, m3), modulo m1*m3.
    uint64_t pair_w1_;
    uint64_t pair_w3_;
    ModuliSet set_;
};

} // namespace rns
} // namespace mirage

#endif // MIRAGE_RNS_SPECIAL_CONVERTER_H
