#include "rns/moduli_set.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace mirage {
namespace rns {

ModuliSet::ModuliSet(std::vector<uint64_t> moduli)
    : moduli_(std::move(moduli))
{
    if (moduli_.empty())
        MIRAGE_FATAL("moduli set must not be empty");
    for (size_t i = 0; i < moduli_.size(); ++i) {
        if (moduli_[i] < 2)
            MIRAGE_FATAL("modulus must be >= 2, got ", moduli_[i]);
        for (size_t j = i + 1; j < moduli_.size(); ++j) {
            if (gcd64(moduli_[i], moduli_[j]) != 1) {
                MIRAGE_FATAL("moduli ", moduli_[i], " and ", moduli_[j],
                             " are not co-prime");
            }
        }
    }
    for (uint64_t m : moduli_) {
        uint128 next = big_m_ * m;
        if (next / m != big_m_)
            MIRAGE_FATAL("dynamic range overflows 128 bits");
        big_m_ = next;
    }
    psi_ = (big_m_ - 1) / 2;
}

ModuliSet
ModuliSet::special(int k)
{
    if (k < 2 || k > 20)
        MIRAGE_FATAL("special moduli set requires 2 <= k <= 20, got ", k);
    const uint64_t two_k = uint64_t{1} << k;
    return ModuliSet({two_k - 1, two_k, two_k + 1});
}

double
ModuliSet::log2DynamicRange() const
{
    double bits = 0.0;
    for (uint64_t m : moduli_)
        bits += std::log2(static_cast<double>(m));
    return bits;
}

int
ModuliSet::converterBits(size_t i) const
{
    MIRAGE_ASSERT(i < moduli_.size(), "modulus index out of range");
    return bitsFor(moduli_[i]);
}

int
ModuliSet::maxConverterBits() const
{
    int bits = 0;
    for (size_t i = 0; i < moduli_.size(); ++i)
        bits = std::max(bits, converterBits(i));
    return bits;
}

bool
ModuliSet::canHoldDotProduct(int bm, int g) const
{
    MIRAGE_ASSERT(bm >= 1 && g >= 1, "invalid BFP parameters");
    const double required = 2.0 * (bm + 1) + std::log2(static_cast<double>(g)) - 1.0;
    return log2DynamicRange() >= required;
}

bool
ModuliSet::inSignedRange(int64_t x) const
{
    const uint128 mag = (x >= 0) ? static_cast<uint128>(x)
                                 : static_cast<uint128>(-(x + 1)) + 1;
    return mag <= psi_;
}

int
ModuliSet::minSpecialK(int bm, int g)
{
    for (int k = 2; k <= 20; ++k) {
        if (special(k).canHoldDotProduct(bm, g))
            return k;
    }
    MIRAGE_FATAL("no special moduli set up to k=20 satisfies Eq. (13) for bm=",
                 bm, " g=", g);
}

} // namespace rns
} // namespace mirage
