#ifndef MIRAGE_RNS_MODULUS_H
#define MIRAGE_RNS_MODULUS_H

/**
 * @file
 * Primitive modular arithmetic on 64-bit residues. Products are formed in
 * 128-bit intermediates so any modulus below 2^63 is safe.
 */

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace mirage {
namespace rns {

/** A residue digit. Always held reduced: 0 <= r < m. */
using Residue = uint64_t;

/** A full residue vector: one digit per modulus of the owning set. */
using ResidueVector = std::vector<Residue>;

/** Unsigned 128-bit integer used for dynamic-range products. */
using uint128 = unsigned __int128;

/** (a + b) mod m for reduced operands. */
inline Residue
addMod(Residue a, Residue b, uint64_t m)
{
    Residue s = a + b;
    if (s >= m || s < a)
        s -= m;
    return s;
}

/** (a - b) mod m for reduced operands. */
inline Residue
subMod(Residue a, Residue b, uint64_t m)
{
    return (a >= b) ? a - b : a + m - b;
}

/** (a * b) mod m via a 128-bit intermediate. */
inline Residue
mulMod(Residue a, Residue b, uint64_t m)
{
    return static_cast<Residue>((static_cast<uint128>(a) * b) % m);
}

/** Reduces a signed 64-bit value into [0, m). */
inline Residue
reduceSigned(int64_t x, uint64_t m)
{
    MIRAGE_ASSERT(m > 0, "modulus must be positive");
    int64_t r = x % static_cast<int64_t>(m);
    if (r < 0)
        r += static_cast<int64_t>(m);
    return static_cast<Residue>(r);
}

/**
 * Modular multiplicative inverse of `a` mod `m` via the extended Euclidean
 * algorithm. Panics when gcd(a, m) != 1 (the caller guarantees co-primality).
 */
inline uint64_t
invMod(uint64_t a, uint64_t m)
{
    int64_t t = 0, new_t = 1;
    int64_t r = static_cast<int64_t>(m), new_r = static_cast<int64_t>(a % m);
    while (new_r != 0) {
        int64_t q = r / new_r;
        int64_t tmp = t - q * new_t;
        t = new_t;
        new_t = tmp;
        tmp = r - q * new_r;
        r = new_r;
        new_r = tmp;
    }
    MIRAGE_ASSERT(r == 1, "invMod of non-coprime operands: ", a, " mod ", m);
    if (t < 0)
        t += static_cast<int64_t>(m);
    return static_cast<uint64_t>(t);
}

} // namespace rns
} // namespace mirage

#endif // MIRAGE_RNS_MODULUS_H
