#include "models/trainable.h"

namespace mirage {
namespace models {

using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Dense;
using nn::Flatten;
using nn::Gelu;
using nn::GlobalAvgPool;
using nn::LayerNorm;
using nn::MaxPool2d;
using nn::MultiHeadSelfAttention;
using nn::ReLU;
using nn::ResidualBlock;
using nn::SequenceMeanPool;
using nn::Sequential;

std::unique_ptr<Sequential>
makeMlp(int in_dim, int hidden, int classes, nn::GemmBackend *backend,
        Rng &rng)
{
    auto model = std::make_unique<Sequential>();
    model->emplace<Dense>(in_dim, hidden, backend, rng);
    model->emplace<ReLU>();
    model->emplace<Dense>(hidden, hidden, backend, rng);
    model->emplace<ReLU>();
    model->emplace<Dense>(hidden, classes, backend, rng);
    return model;
}

std::unique_ptr<Sequential>
makeSmallCnn(int classes, nn::GemmBackend *backend, Rng &rng)
{
    auto model = std::make_unique<Sequential>();
    model->emplace<Conv2d>(1, 8, 3, 1, 1, backend, rng);
    model->emplace<ReLU>();
    model->emplace<MaxPool2d>();
    model->emplace<Conv2d>(8, 16, 3, 1, 1, backend, rng);
    model->emplace<ReLU>();
    model->emplace<MaxPool2d>();
    model->emplace<Flatten>();
    model->emplace<Dense>(16 * 4 * 4, 64, backend, rng);
    model->emplace<ReLU>();
    model->emplace<Dense>(64, classes, backend, rng);
    return model;
}

namespace {

std::unique_ptr<nn::Layer>
basicBlock(int channels, nn::GemmBackend *backend, Rng &rng)
{
    auto main = std::make_unique<Sequential>();
    main->emplace<Conv2d>(channels, channels, 3, 1, 1, backend, rng,
                          /*bias=*/false);
    main->emplace<BatchNorm2d>(channels);
    main->emplace<ReLU>();
    main->emplace<Conv2d>(channels, channels, 3, 1, 1, backend, rng,
                          /*bias=*/false);
    main->emplace<BatchNorm2d>(channels);
    return std::make_unique<ResidualBlock>(std::move(main));
}

} // namespace

std::unique_ptr<Sequential>
makeMiniResNet(int classes, nn::GemmBackend *backend, Rng &rng)
{
    auto model = std::make_unique<Sequential>();
    model->emplace<Conv2d>(1, 8, 3, 1, 1, backend, rng, /*bias=*/false);
    model->emplace<BatchNorm2d>(8);
    model->emplace<ReLU>();
    model->add(basicBlock(8, backend, rng));
    model->emplace<ReLU>();
    model->emplace<MaxPool2d>();
    model->emplace<Conv2d>(8, 16, 3, 1, 1, backend, rng, /*bias=*/false);
    model->emplace<BatchNorm2d>(16);
    model->emplace<ReLU>();
    model->add(basicBlock(16, backend, rng));
    model->emplace<ReLU>();
    model->emplace<GlobalAvgPool>();
    model->emplace<Dense>(16, classes, backend, rng);
    return model;
}

namespace {

std::unique_ptr<nn::Layer>
transformerBlock(int dim, int heads, nn::GemmBackend *backend, Rng &rng)
{
    // Pre-norm attention sub-block.
    auto attn_path = std::make_unique<Sequential>();
    attn_path->emplace<LayerNorm>(dim);
    attn_path->emplace<MultiHeadSelfAttention>(dim, heads, backend, rng);
    auto attn_block = std::make_unique<ResidualBlock>(std::move(attn_path));

    // Pre-norm feed-forward sub-block.
    auto ff_path = std::make_unique<Sequential>();
    ff_path->emplace<LayerNorm>(dim);
    ff_path->emplace<Dense>(dim, 4 * dim, backend, rng);
    ff_path->emplace<Gelu>();
    ff_path->emplace<Dense>(4 * dim, dim, backend, rng);
    auto ff_block = std::make_unique<ResidualBlock>(std::move(ff_path));

    auto block = std::make_unique<Sequential>();
    block->add(std::move(attn_block));
    block->add(std::move(ff_block));
    return block;
}

} // namespace

std::unique_ptr<Sequential>
makeTinyTransformer(int vocab, int classes, int dim, int heads, int layers,
                    nn::GemmBackend *backend, Rng &rng)
{
    auto model = std::make_unique<Sequential>();
    // Token embedding as a per-token dense over one-hot inputs.
    model->emplace<Dense>(vocab, dim, backend, rng);
    for (int l = 0; l < layers; ++l)
        model->add(transformerBlock(dim, heads, backend, rng));
    model->emplace<LayerNorm>(dim);
    model->emplace<SequenceMeanPool>();
    model->emplace<Dense>(dim, classes, backend, rng);
    return model;
}

} // namespace models
} // namespace mirage
