#include "models/zoo.h"

#include "common/logging.h"

namespace mirage {
namespace models {

namespace {

/** Standard convolution: Cout x (Cin k^2) GEMM over out_hw positions. */
GemmLayer
conv(std::string name, int64_t cout, int64_t cin, int64_t kernel,
     int64_t out_hw)
{
    return {std::move(name), cout, cin * kernel * kernel, out_hw * out_hw, 1,
            true};
}

/** Depthwise 3x3 convolution: one (1 x 9) GEMM instance per channel. */
GemmLayer
dwConv(std::string name, int64_t channels, int64_t out_hw)
{
    return {std::move(name), 1, 9, out_hw * out_hw, channels, true};
}

/** Fully connected layer. */
GemmLayer
fc(std::string name, int64_t out, int64_t in)
{
    return {std::move(name), out, in, 1, 1, true};
}

/** Attention-style GEMM: N is the sequence; batch multiplies instances. */
GemmLayer
attn(std::string name, int64_t m, int64_t k, int64_t n, int64_t heads)
{
    return {std::move(name), m, k, n, heads, false};
}

} // namespace

int64_t
ModelShape::forwardMacs(int64_t batch) const
{
    int64_t total = 0;
    for (const GemmTask &t : inferenceTasks(*this, batch))
        total += t.count * t.shape.macs();
    return total;
}

int64_t
ModelShape::trainingMacs(int64_t batch) const
{
    int64_t total = 0;
    for (const GemmTask &t : trainingTasks(*this, batch))
        total += t.count * t.shape.macs();
    return total;
}

int64_t
ModelShape::weightElements() const
{
    int64_t total = 0;
    for (const GemmLayer &layer : layers)
        total += layer.m * layer.k * layer.instances_per_sample;
    return total;
}

std::vector<GemmTask>
trainingTasks(const ModelShape &model, int64_t batch)
{
    MIRAGE_ASSERT(batch >= 1, "batch must be positive");
    std::vector<GemmTask> tasks;
    tasks.reserve(model.layers.size() * 3);
    for (const GemmLayer &layer : model.layers) {
        const int64_t n =
            layer.batch_in_n ? layer.spatial * batch : layer.spatial;
        const int64_t count = layer.batch_in_n
                                  ? layer.instances_per_sample
                                  : layer.instances_per_sample * batch;
        const auto shapes = arch::trainingGemms(layer.m, layer.k, n);
        for (size_t i = 0; i < arch::kTrainingOps.size(); ++i)
            tasks.push_back(
                {layer.name, arch::kTrainingOps[i], shapes[i], count});
    }
    return tasks;
}

std::vector<GemmTask>
inferenceTasks(const ModelShape &model, int64_t batch)
{
    MIRAGE_ASSERT(batch >= 1, "batch must be positive");
    std::vector<GemmTask> tasks;
    tasks.reserve(model.layers.size());
    for (const GemmLayer &layer : model.layers) {
        const int64_t n =
            layer.batch_in_n ? layer.spatial * batch : layer.spatial;
        const int64_t count = layer.batch_in_n
                                  ? layer.instances_per_sample
                                  : layer.instances_per_sample * batch;
        tasks.push_back({layer.name, arch::TrainingOp::Forward,
                         arch::GemmShape{layer.m, layer.k, n}, count});
    }
    return tasks;
}

ModelShape
alexNet()
{
    ModelShape m;
    m.name = "AlexNet";
    m.layers = {
        conv("conv1", 96, 3, 11, 55),
        conv("conv2", 256, 96, 5, 27),
        conv("conv3", 384, 256, 3, 13),
        conv("conv4", 384, 384, 3, 13),
        conv("conv5", 256, 384, 3, 13),
        fc("fc6", 4096, 256 * 6 * 6),
        fc("fc7", 4096, 4096),
        fc("fc8", 1000, 4096),
    };
    return m;
}

ModelShape
vgg16()
{
    ModelShape m;
    m.name = "VGG16";
    m.layers = {
        conv("conv1_1", 64, 3, 3, 224),   conv("conv1_2", 64, 64, 3, 224),
        conv("conv2_1", 128, 64, 3, 112), conv("conv2_2", 128, 128, 3, 112),
        conv("conv3_1", 256, 128, 3, 56), conv("conv3_2", 256, 256, 3, 56),
        conv("conv3_3", 256, 256, 3, 56), conv("conv4_1", 512, 256, 3, 28),
        conv("conv4_2", 512, 512, 3, 28), conv("conv4_3", 512, 512, 3, 28),
        conv("conv5_1", 512, 512, 3, 14), conv("conv5_2", 512, 512, 3, 14),
        conv("conv5_3", 512, 512, 3, 14),
        fc("fc6", 4096, 512 * 7 * 7),
        fc("fc7", 4096, 4096),
        fc("fc8", 1000, 4096),
    };
    return m;
}

ModelShape
resNet18()
{
    ModelShape m;
    m.name = "ResNet18";
    m.layers.push_back(conv("conv1", 64, 3, 7, 112));
    // layer1: 2 basic blocks at 56x56, 64 channels.
    for (int b = 0; b < 2; ++b) {
        std::string p = "l1b";
        p += std::to_string(b);
        m.layers.push_back(conv(p + ".c1", 64, 64, 3, 56));
        m.layers.push_back(conv(p + ".c2", 64, 64, 3, 56));
    }
    // layer2-4: first block strides and downsamples via 1x1.
    struct Stage { int idx; int64_t ch; int64_t hw; };
    for (const Stage &s : {Stage{2, 128, 28}, Stage{3, 256, 14}, Stage{4, 512, 7}}) {
        std::string p = "l";
        p += std::to_string(s.idx);
        m.layers.push_back(conv(p + "b0.c1", s.ch, s.ch / 2, 3, s.hw));
        m.layers.push_back(conv(p + "b0.c2", s.ch, s.ch, 3, s.hw));
        m.layers.push_back(conv(p + "b0.down", s.ch, s.ch / 2, 1, s.hw));
        m.layers.push_back(conv(p + "b1.c1", s.ch, s.ch, 3, s.hw));
        m.layers.push_back(conv(p + "b1.c2", s.ch, s.ch, 3, s.hw));
    }
    m.layers.push_back(fc("fc", 1000, 512));
    return m;
}

ModelShape
resNet50()
{
    ModelShape m;
    m.name = "ResNet50";
    m.layers.push_back(conv("conv1", 64, 3, 7, 112));
    struct Stage { int idx; int blocks; int64_t mid; int64_t out; int64_t hw; int64_t in; };
    const Stage stages[] = {
        {1, 3, 64, 256, 56, 64},
        {2, 4, 128, 512, 28, 256},
        {3, 6, 256, 1024, 14, 512},
        {4, 3, 512, 2048, 7, 1024},
    };
    for (const Stage &s : stages) {
        for (int b = 0; b < s.blocks; ++b) {
            std::string p = "l";
            p += std::to_string(s.idx);
            p += "b";
            p += std::to_string(b);
            const int64_t cin = (b == 0) ? s.in : s.out;
            m.layers.push_back(conv(p + ".c1", s.mid, cin, 1, s.hw));
            m.layers.push_back(conv(p + ".c2", s.mid, s.mid, 3, s.hw));
            m.layers.push_back(conv(p + ".c3", s.out, s.mid, 1, s.hw));
            if (b == 0)
                m.layers.push_back(conv(p + ".down", s.out, cin, 1, s.hw));
        }
    }
    m.layers.push_back(fc("fc", 1000, 2048));
    return m;
}

ModelShape
mobileNetV2()
{
    ModelShape m;
    m.name = "MobileNetV2";
    m.layers.push_back(conv("conv0", 32, 3, 3, 112));
    // Inverted residual stages: (expansion t, channels c, repeats n, hw).
    struct Stage { int64_t t; int64_t c; int n; int64_t hw; };
    const Stage stages[] = {
        {1, 16, 1, 112}, {6, 24, 2, 56}, {6, 32, 3, 28}, {6, 64, 4, 14},
        {6, 96, 3, 14},  {6, 160, 3, 7}, {6, 320, 1, 7},
    };
    int64_t cin = 32;
    int stage_idx = 0;
    for (const Stage &s : stages) {
        for (int b = 0; b < s.n; ++b) {
            const std::string p = "ir" + std::to_string(stage_idx) + "." +
                                  std::to_string(b);
            const int64_t hidden = cin * s.t;
            if (s.t != 1)
                m.layers.push_back(conv(p + ".expand", hidden, cin, 1, s.hw));
            m.layers.push_back(dwConv(p + ".dw", hidden, s.hw));
            m.layers.push_back(conv(p + ".project", s.c, hidden, 1, s.hw));
            cin = s.c;
        }
        ++stage_idx;
    }
    m.layers.push_back(conv("conv_last", 1280, 320, 1, 7));
    m.layers.push_back(fc("fc", 1000, 1280));
    return m;
}

ModelShape
yoloV2()
{
    ModelShape m;
    m.name = "YOLOv2";
    // Darknet-19 backbone at 416x416 input.
    m.layers = {
        conv("conv1", 32, 3, 3, 416),
        conv("conv2", 64, 32, 3, 208),
        conv("conv3", 128, 64, 3, 104),
        conv("conv4", 64, 128, 1, 104),
        conv("conv5", 128, 64, 3, 104),
        conv("conv6", 256, 128, 3, 52),
        conv("conv7", 128, 256, 1, 52),
        conv("conv8", 256, 128, 3, 52),
        conv("conv9", 512, 256, 3, 26),
        conv("conv10", 256, 512, 1, 26),
        conv("conv11", 512, 256, 3, 26),
        conv("conv12", 256, 512, 1, 26),
        conv("conv13", 512, 256, 3, 26),
        conv("conv14", 1024, 512, 3, 13),
        conv("conv15", 512, 1024, 1, 13),
        conv("conv16", 1024, 512, 3, 13),
        conv("conv17", 512, 1024, 1, 13),
        conv("conv18", 1024, 512, 3, 13),
        // Detection head.
        conv("conv19", 1024, 1024, 3, 13),
        conv("conv20", 1024, 1024, 3, 13),
        conv("conv21", 1024, 1280, 3, 13), // after passthrough concat
        conv("conv22", 425, 1024, 1, 13),  // 5 anchors x (20 + 5), VOC
    };
    return m;
}

ModelShape
transformer()
{
    ModelShape m;
    m.name = "Transformer";
    // 12 layers, hidden 768, 12 heads (paper Sec. VI-B), sequence 128.
    constexpr int64_t kLayers = 12;
    constexpr int64_t kDim = 768;
    constexpr int64_t kHeads = 12;
    constexpr int64_t kSeq = 128;
    constexpr int64_t kHeadDim = kDim / kHeads;
    constexpr int64_t kFf = 4 * kDim;
    for (int64_t l = 0; l < kLayers; ++l) {
        const std::string p = "layer" + std::to_string(l);
        // Q/K/V and output projections act per token: N = seq * batch.
        m.layers.push_back({p + ".qkv", 3 * kDim, kDim, kSeq, 1, true});
        m.layers.push_back(
            attn(p + ".scores", kSeq, kHeadDim, kSeq, kHeads));
        m.layers.push_back(
            attn(p + ".context", kSeq, kSeq, kHeadDim, kHeads));
        m.layers.push_back({p + ".proj", kDim, kDim, kSeq, 1, true});
        m.layers.push_back({p + ".ff1", kFf, kDim, kSeq, 1, true});
        m.layers.push_back({p + ".ff2", kDim, kFf, kSeq, 1, true});
    }
    // Output vocabulary projection (IWSLT14 BPE vocabulary ~10k).
    m.layers.push_back({"lm_head", 10000, kDim, kSeq, 1, true});
    return m;
}

std::vector<ModelShape>
allModels()
{
    return {alexNet(),     resNet18(), resNet50(),   vgg16(),
            mobileNetV2(), yoloV2(),   transformer()};
}

} // namespace models
} // namespace mirage
