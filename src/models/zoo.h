#ifndef MIRAGE_MODELS_ZOO_H
#define MIRAGE_MODELS_ZOO_H

/**
 * @file
 * Layer-shape zoo of the seven DNNs the paper evaluates (Sec. VI-B):
 * AlexNet, ResNet18, ResNet50, VGG16, MobileNetV2, YOLOv2 and a 12-layer
 * Transformer. Only GEMM-bearing layers are recorded (convolutions in
 * im2col form, linear layers, attention GEMMs) — exactly what the
 * performance simulator needs for Figs. 6-8 and Table III.
 */

#include <string>
#include <vector>

#include "arch/gemm_shape.h"

namespace mirage {
namespace models {

/** One GEMM-bearing layer of a DNN, batch-independent. */
struct GemmLayer
{
    std::string name;
    int64_t m = 0;       ///< Output features (conv: Cout).
    int64_t k = 0;       ///< Input features (conv: Cin * kh * kw).
    int64_t spatial = 1; ///< Output positions per sample (1 for FC).
    /// Independent GEMM instances per sample (e.g. attention heads,
    /// depthwise channels).
    int64_t instances_per_sample = 1;
    /// True: batch multiplies N (N = spatial * B, count = instances).
    /// False: batch multiplies the instance count (attention-style GEMMs
    /// whose N dimension is the sequence, not the batch).
    bool batch_in_n = true;
};

/** A named stack of GEMM layers. */
struct ModelShape
{
    std::string name;
    std::vector<GemmLayer> layers;

    /** Total MACs of one forward pass at the given batch size. */
    int64_t forwardMacs(int64_t batch) const;

    /** Total MACs of one training step (3 GEMMs per layer). */
    int64_t trainingMacs(int64_t batch) const;

    /**
     * Stationary weight values across all layers (m*k per GEMM instance):
     * what must be programmed into the MMVMU phase shifters before this
     * model can stream inferences (serving cold-start cost).
     */
    int64_t weightElements() const;
};

/** One schedulable GEMM: shape + repeat count. */
struct GemmTask
{
    std::string layer;
    arch::TrainingOp op = arch::TrainingOp::Forward;
    arch::GemmShape shape;
    int64_t count = 1;
};

/** All three training GEMMs for every layer at a batch size. */
std::vector<GemmTask> trainingTasks(const ModelShape &model, int64_t batch);

/** Forward-only GEMMs (inference, Table III). */
std::vector<GemmTask> inferenceTasks(const ModelShape &model, int64_t batch);

// --- the seven evaluated DNNs (paper Sec. VI-B) -------------------------

ModelShape alexNet();      ///< 5 conv + 3 FC, ImageNet 224x224.
ModelShape resNet18();     ///< Basic blocks, ImageNet.
ModelShape resNet50();     ///< Bottleneck blocks, ImageNet.
ModelShape vgg16();        ///< 13 conv + 3 FC, ImageNet.
ModelShape mobileNetV2();  ///< Inverted residuals with depthwise convs.
ModelShape yoloV2();       ///< Darknet-19 backbone + detection head, 416x416.
ModelShape transformer();  ///< 12 layers, d=768, 12 heads, seq 128 (IWSLT).

/** All seven models in the paper's reporting order. */
std::vector<ModelShape> allModels();

} // namespace models
} // namespace mirage

#endif // MIRAGE_MODELS_ZOO_H
