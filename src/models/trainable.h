#ifndef MIRAGE_MODELS_TRAINABLE_H
#define MIRAGE_MODELS_TRAINABLE_H

/**
 * @file
 * Small trainable networks for the accuracy experiments (Table I,
 * Fig. 5a): laptop-scale stand-ins that exercise the same quantized-GEMM
 * code paths as the paper's full models (see DESIGN.md substitutions).
 * Every GEMM — convolutional, dense, and attention — flows through the
 * caller-supplied backend.
 */

#include <memory>

#include "nn/attention.h"
#include "nn/layers_basic.h"
#include "nn/layers_conv.h"
#include "nn/layers_norm.h"
#include "nn/model.h"

namespace mirage {
namespace models {

/** Three-layer MLP for `dim`-dimensional vector classification. */
std::unique_ptr<nn::Sequential> makeMlp(int in_dim, int hidden, int classes,
                                        nn::GemmBackend *backend, Rng &rng);

/**
 * Small CNN for [B, 1, 16, 16] pattern images:
 * conv3x3(8) - ReLU - pool - conv3x3(16) - ReLU - pool - FC(64) - FC(C).
 */
std::unique_ptr<nn::Sequential> makeSmallCnn(int classes,
                                             nn::GemmBackend *backend,
                                             Rng &rng);

/**
 * Miniature ResNet for the same images: stem conv + two residual blocks
 * (with batch norm) + global average pooling + classifier.
 */
std::unique_ptr<nn::Sequential> makeMiniResNet(int classes,
                                               nn::GemmBackend *backend,
                                               Rng &rng);

/**
 * Tiny transformer encoder classifier over one-hot token sequences
 * [B, T, vocab]: token embedding, `layers` pre-norm attention/FFN blocks,
 * mean pooling, classifier head.
 */
std::unique_ptr<nn::Sequential> makeTinyTransformer(int vocab, int classes,
                                                    int dim, int heads,
                                                    int layers,
                                                    nn::GemmBackend *backend,
                                                    Rng &rng);

} // namespace models
} // namespace mirage

#endif // MIRAGE_MODELS_TRAINABLE_H
