#ifndef MIRAGE_OBS_FLIGHT_RECORDER_H
#define MIRAGE_OBS_FLIGHT_RECORDER_H

/**
 * @file
 * Anomaly flight recorder: a bounded, always-on ring of the most recent
 * RequestRecords that can be dumped to disk when something goes wrong —
 * an SLO burn alert, a shed burst, or a fatal signal.
 *
 * Recording is always on (gated only by obs::enabled()) and cheap: one
 * mutex-protected POD copy into a preallocated ring, no allocation, so
 * the trainer's zero-alloc step contract holds with a record per step.
 *
 * Dumping is armed separately: arm(dir) (or the MIRAGE_FLIGHT_DIR env
 * var, read once on first use) names the output directory. While
 * disarmed, trigger() is a counted no-op — determinism suites and tests
 * that never set the env var cannot grow files. A trigger writes
 *   <dir>/flight_<reason>_<seq>.jsonl       (ring, oldest first)
 *   <dir>/flight_<reason>_<seq>.trace.json  (Chrome-trace span snapshot)
 * rate-limited to one dump per min-interval so an alert storm produces
 * one artifact, not thousands.
 *
 * Arming also installs fatal-signal handlers (SIGSEGV/SIGBUS/SIGFPE/
 * SIGABRT) that write the ring through a pre-opened fd using only
 * async-signal-safe calls (write + manual formatting; the ring is read
 * without its mutex — a torn in-progress record is acceptable in a
 * crash dump), then re-raise with the default disposition.
 */

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/context.h"

namespace mirage {
namespace obs {

class FlightRecorder
{
  public:
    /// Ring capacity: ~4k requests of history, a few hundred KB resident.
    static constexpr size_t kCapacity = 4096;

    /** Process-wide instance (leaked; safe from static destructors).
     *  First use reads MIRAGE_FLIGHT_DIR and arms when it names a
     *  directory. */
    static FlightRecorder &global();

    /** Copies one record into the ring (no-op when obs::enabled() is
     *  off). Allocation-free; callable from any thread. */
    void record(const RequestRecord &rec);

    /** Records currently held (<= kCapacity). */
    size_t size() const;

    /** Lifetime records pushed (including overwritten ones). */
    uint64_t recorded() const;

    /** Ring contents, oldest first. */
    std::vector<RequestRecord> snapshot() const;

    /** Streams the ring as JSONL, oldest first. */
    void dump(std::ostream &os) const;

    /** Arms dumping into `dir` (must exist) and installs the fatal-signal
     *  handlers on first arm. */
    void arm(const std::string &dir);

    /** Disarms dumping (trigger() returns to counted-no-op). */
    void disarm();

    bool armed() const;

    /** The armed output directory ("" when disarmed). */
    std::string armedDir() const;

    /**
     * Dumps the ring + a span snapshot when armed and outside the
     * rate-limit window; returns the JSONL path, or "" when suppressed
     * (disarmed / rate-limited / empty ring). `reason` becomes part of
     * the file name — keep it a short [a-z_]+ literal.
     */
    std::string trigger(const char *reason);

    /** Dumps written by trigger() so far. */
    uint64_t triggerCount() const;

    /** Rate-limit floor between dumps (default 2 s; tests set 0). */
    void setMinTriggerInterval(double seconds);

    /** Empties the ring (tests). */
    void clear();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

  private:
    FlightRecorder();

    struct Impl;
    Impl *impl_;
};

} // namespace obs
} // namespace mirage

#endif // MIRAGE_OBS_FLIGHT_RECORDER_H
