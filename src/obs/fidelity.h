#ifndef MIRAGE_OBS_FIDELITY_H
#define MIRAGE_OBS_FIDELITY_H

/**
 * @file
 * Numerical-fidelity telemetry: shadow-execution error probes, RNS/BFP
 * health accounting, and EWMA+CUSUM drift detection over SNR/error series.
 *
 * Mirage's central claim is digital-equivalent training precision on an
 * analog substrate; this layer is the runtime's visibility into whether
 * that holds. Three tiers, by cost:
 *
 *  - **Shadow probes** (off by default, `MIRAGE_FIDELITY=N` probes every
 *    Nth GEMM/MVM per call site): re-execute a sampled call against the
 *    FP32 reference path and record per-layer error histograms
 *    (`fidelity.probe.rmse_bits.<layer>` / `.maxrel_bits.<layer>`,
 *    encoded as round(-log2 relative error) "bits of accuracy"). The
 *    disabled check is one relaxed load plus a branch (~1-2 ns, pinned by
 *    bench/obs_overhead and tests/test_obs_fidelity.cpp). Probes only
 *    *read* outputs — they never feed numeric state, never consume the
 *    caller's Rng — so every determinism suite is bit-identical with
 *    probes enabled.
 *
 *  - **Always-on health counters** (gated only by obs::enabled(), same
 *    contract as every other metric): RNS overflow-margin accounting in
 *    the raw-accumulation fast paths (`fidelity.rns.*`, promoting the
 *    debug-only modularDot overflow DASSERT into a counted observation),
 *    BFP exponent-distribution histograms and mantissa-clip counters
 *    (`fidelity.bfp.*`), and per-unit photonic SNR estimates
 *    (`fidelity.photonic.*`).
 *
 *  - **Drift detection**: named series (per-layer probe error, per-modulus
 *    photonic SNR, or anything a bench feeds in) run through an
 *    EWMA-smoothed CUSUM change detector. Alerts are rising-edge only,
 *    bump `fidelity.drift.alerts`, trigger a `fidelity_drift` flight dump
 *    (obs/flight_recorder.h) and fan out to registered listeners —
 *    InferenceServer forwards them through ServerConfig::on_alert as
 *    SloAlertKind::FidelityDrift.
 *
 * Everything surfaces through /metrics (Prometheus), the /fidelityz text
 * summary, and the JSON report (writeReportFile, emitted by train_soak /
 * serve_soak via --fidelity-report and validated by bench/check_fidelity.py).
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>

namespace mirage {
namespace obs {
namespace fidelity {

namespace detail {
/// 0 = probes off; N > 0 = shadow-execute every Nth sampled call per site.
/// -1 sentinel = read MIRAGE_FIDELITY on first query.
extern std::atomic<int64_t> g_probe_interval;
int64_t initProbeInterval();
} // namespace detail

/** Current probe interval: 0 = off, N = every Nth call per site. First
 *  call reads MIRAGE_FIDELITY ("0"/"off"/"false"/unset disable; a positive
 *  integer N probes every Nth call; garbage warns loudly and disables). */
inline uint64_t
probeInterval()
{
    const int64_t v = detail::g_probe_interval.load(std::memory_order_relaxed);
    if (v >= 0)
        return static_cast<uint64_t>(v);
    return static_cast<uint64_t>(detail::initProbeInterval());
}

/** Overrides the probe interval at runtime (0 disables). */
void setProbeInterval(uint64_t every_n);

/**
 * Deterministic per-site probe sampler. Each call site (a backend
 * instance; backends have a single-caller contract) owns one, so sampling
 * counts that site's call sequence — the same calls are probed at every
 * thread count and on every run. Disabled cost: one relaxed load and a
 * predicted branch.
 */
class ProbeSampler
{
  public:
    bool
    sample()
    {
        const uint64_t every = probeInterval();
        if (every == 0)
            return false;
        return (++calls_ % every) == 0;
    }

    /** Calls seen by this site (for tests). */
    uint64_t calls() const { return calls_; }

  private:
    uint64_t calls_ = 0;
};

/**
 * RAII thread-local layer label: layers tag their forward/backward GEMMs
 * so shadow probes attribute error histograms per layer. Pointer-only
 * save/set/restore (the label must outlive the scope — layers pass their
 * stable name member). Nests; the innermost label wins.
 */
class LayerScope
{
  public:
    explicit LayerScope(const char *layer);
    ~LayerScope();

    LayerScope(const LayerScope &) = delete;
    LayerScope &operator=(const LayerScope &) = delete;

  private:
    const char *prev_;
};

/** The innermost LayerScope label, or "" when unset. */
const char *currentLayer();

/**
 * Records one shadow-execution probe: compares `actual` against the FP32
 * `reference`, records the per-layer error histograms (layer label from
 * LayerScope, else `site`), bumps `fidelity.probes`, and feeds the
 * per-layer error drift series (`fidelity.err.<layer>`, alerting on
 * accuracy *loss*). Errors are relative to the reference RMS:
 *   rmse_rel = rms(actual - reference) / rms(reference)
 *   maxrel   = max|actual - reference| / rms(reference)
 * and are recorded as round(-log2(err)) clamped to [0, 64] — "matching
 * bits"; 64 means bit-exact.
 */
void recordProbe(const char *site, std::span<const float> actual,
                 std::span<const float> reference);

/**
 * Always-on RNS overflow-margin accounting for a raw 64-bit accumulation
 * of `accum_len` products of residues < `modulus` (< 2^32). Headroom in
 * bits between the worst case `accum_len * (modulus-1)^2` and 2^64:
 * margin 0 still fits; negative would overflow. Updates
 * `fidelity.rns.dot_checks`, the running-minimum gauge
 * `fidelity.rns.overflow_margin_min`, the `fidelity.rns.range_used_bits`
 * histogram, and counts would-overflow calls in
 * `fidelity.rns.overflow_risk`. Returns the margin (for tests).
 */
int recordRnsMargin(uint64_t modulus, int64_t accum_len);

/** Always-on counted fallback note: a GEMM whose accumulation could not
 *  use the raw 64-bit fast path and took the fully-reduced route instead
 *  (`fidelity.rns.reduced_fallbacks`). */
void noteRnsReducedFallback();

/** Always-on BFP group-encode note: bumps `fidelity.bfp.groups`, records
 *  the shared exponent into the `fidelity.bfp.exponent_bias128` histogram
 *  (offset by +128 so negative exponents stay recordable), and counts
 *  clamped mantissas in `fidelity.bfp.clipped_mantissas`. */
void noteBfpGroup(int shared_exponent, int clipped_mantissas);

/** Always-on per-unit photonic SNR note: records `fidelity.photonic.snr_db`
 *  and maintains the running-minimum gauge `fidelity.photonic.snr_db_min`
 *  (both in integer dB, clamped at 0). */
void noteSnrDb(double snr_db);

/** One sampled MVM shadow probe against the noiseless reference: bumps
 *  `fidelity.photonic.mvm_probes`, `fidelity.photonic.residue_checks`
 *  (+= residues_checked) and `fidelity.photonic.residue_errors`
 *  (+= mismatches). */
void notePhotonicProbe(uint64_t residues_checked, uint64_t mismatches);

// ---------------------------------------------------------------------------
// EWMA + CUSUM drift detection

/** Drift-detector knobs. Defaults suit dB-scale SNR series. */
struct DriftConfig
{
    double alpha = 0.25;      ///< EWMA smoothing of the tracked value.
    double slack = 0.5;       ///< CUSUM slack k: deviations below it decay.
    double threshold = 4.0;   ///< CUSUM decision threshold h.
    uint64_t min_samples = 8; ///< Cold-start floor: the baseline freezes at
                              ///< the mean of these; no alert before it.

    /** Throws std::invalid_argument on out-of-range knobs. */
    void validate() const;
};

enum class DriftDirection
{
    Up,   ///< Series drifted above baseline (e.g. error growing).
    Down, ///< Series drifted below baseline (e.g. SNR sagging).
};

const char *toString(DriftDirection direction);

/** One rising-edge drift alert. */
struct DriftAlert
{
    std::string series; ///< Series name ("" from a bare DriftDetector).
    DriftDirection direction = DriftDirection::Down;
    double at_s = 0.0;     ///< Detector time of the crossing (clamped).
    double value = 0.0;     ///< EWMA value at the crossing.
    double baseline = 0.0;  ///< Frozen cold-start baseline.
    double cusum = 0.0;     ///< The crossing statistic.
    double threshold = 0.0; ///< Configured decision threshold h.
    uint64_t samples = 0;   ///< Observations seen so far.
};

/** Point-in-time detector state. */
struct DriftStatus
{
    uint64_t samples = 0;
    double baseline = 0.0;
    double ewma = 0.0;
    double cusum_up = 0.0;
    double cusum_down = 0.0;
    bool firing_up = false;
    bool firing_down = false;
};

/**
 * EWMA + CUSUM change detector (Page's test on the smoothed series).
 *
 * Warm-up: the first `min_samples` observations establish the baseline
 * (their running mean) and can never alert. After warm-up the baseline is
 * frozen, each observation updates the EWMA, and the one-sided CUSUM
 * statistics accumulate smoothed deviations past the slack:
 *   S_up   = max(0, S_up   + (ewma - baseline) - slack)
 *   S_down = max(0, S_down - (ewma - baseline) - slack)
 * A statistic crossing `threshold` fires a rising-edge alert in that
 * direction; the firing latch clears when the statistic decays back to or
 * below the threshold (deviations within the slack drain it), after which
 * a fresh excursion alerts again.
 *
 * Time is explicit (mirrors serve::SloMonitor): callers pass
 * seconds-since-start (or any monotone sample index); regressions clamp
 * to the latest time seen. Time only stamps alerts — the statistics are
 * per-observation — so feeding logical indices keeps detection fully
 * deterministic. Not internally synchronized; Series adds the lock.
 */
class DriftDetector
{
  public:
    explicit DriftDetector(DriftConfig cfg = {});

    /** Records one observation; returns the alert when this observation
     *  is a rising-edge threshold crossing. */
    std::optional<DriftAlert> observe(double t_s, double value);

    DriftStatus status() const;
    const DriftConfig &config() const { return cfg_; }

  private:
    DriftConfig cfg_;
    uint64_t samples_ = 0;
    double last_t_ = 0.0;
    double baseline_ = 0.0; ///< Running mean during warm-up, then frozen.
    double ewma_ = 0.0;
    double cusum_up_ = 0.0;
    double cusum_down_ = 0.0;
    bool firing_up_ = false;
    bool firing_down_ = false;
};

/** Per-series configuration: detector knobs plus which directions alert. */
struct SeriesConfig
{
    DriftConfig drift;
    bool alert_up = true;   ///< Fan out upward-drift alerts.
    bool alert_down = true; ///< Fan out downward-drift alerts.
};

/**
 * One named, internally synchronized drift series. Handles are stable for
 * the process lifetime (registry pattern of MetricsRegistry). An alert in
 * an enabled direction bumps `fidelity.drift.alerts`, triggers a
 * `fidelity_drift` flight-recorder dump, and fans out to the registered
 * listeners — all outside the series lock.
 */
class Series
{
  public:
    Series(std::string name, SeriesConfig cfg);

    /** Observes at logical time = observation index (deterministic). */
    void observe(double value);

    /** Observes at explicit time `t_s` (soaks feeding wall/schedule time). */
    void observeAt(double t_s, double value);

    DriftStatus status() const;
    const std::string &name() const { return name_; }
    const SeriesConfig &config() const { return cfg_; }

    /** Lifetime alerts fanned out by this series. */
    uint64_t alerts() const;

    Series(const Series &) = delete;
    Series &operator=(const Series &) = delete;

  private:
    friend void resetForTest();

    void dispatch(std::optional<DriftAlert> alert);

    struct Impl;
    Impl *impl_;
    std::string name_;
    SeriesConfig cfg_;
};

/** Registers (first call) or looks up the named drift series. The config
 *  only applies on first registration; later calls return the existing
 *  handle unchanged. */
Series &series(const std::string &name, const SeriesConfig &cfg = {});

/** Registers a process-wide drift-alert listener; returns a token for
 *  removeAlertListener. Listeners run on the observing thread, outside
 *  fidelity locks — keep them fast. */
uint64_t addAlertListener(std::function<void(const DriftAlert &)> fn);
void removeAlertListener(uint64_t token);

// ---------------------------------------------------------------------------
// Exposition

/** Human-readable summary of per-layer probe error, RNS/BFP health, and
 *  drift-detector state — the /fidelityz endpoint body. */
void writeSummary(std::ostream &os);

/** The per-layer fidelity report as JSON (see bench/check_fidelity.py):
 *  {"probes": {...}, "layers": {...}, "rns": {...}, "bfp": {...},
 *   "photonic": {...}, "drift": {...}}. */
void writeReport(std::ostream &os);

/** writeReport to `path`; returns false (and warns) on I/O failure. */
bool writeReportFile(const std::string &path);

/** Clears fidelity-local state (series registry, listeners, per-layer
 *  table, running minima) AND the fidelity.* metrics. Tests only. */
void resetForTest();

} // namespace fidelity
} // namespace obs
} // namespace mirage

#endif // MIRAGE_OBS_FIDELITY_H
