#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <locale>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/logging.h"

namespace mirage {
namespace obs {

namespace {

/// -1 = uninitialized (read MIRAGE_OBS on first query), else 0/1.
std::atomic<int> g_enabled{-1};

bool
envFlagOff(const char *value)
{
    if (value == nullptr)
        return false;
    return std::strcmp(value, "0") == 0 || std::strcmp(value, "false") == 0 ||
           std::strcmp(value, "off") == 0;
}

} // namespace

bool
enabled()
{
    int state = g_enabled.load(std::memory_order_relaxed);
    if (state < 0) {
        const char *env = std::getenv("MIRAGE_OBS");
        int init = envFlagOff(env) ? 0 : 1;
        int expected = -1;
        // First caller wins; a concurrent setEnabled() is preserved.
        g_enabled.compare_exchange_strong(expected, init,
                                          std::memory_order_relaxed);
        state = g_enabled.load(std::memory_order_relaxed);
    }
    return state != 0;
}

void
setEnabled(bool on)
{
    g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace detail {

size_t
threadShard()
{
    static std::atomic<size_t> next{0};
    thread_local const size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return shard;
}

} // namespace detail

// ---------------------------------------------------------------------------
// Counter

uint64_t
Counter::value() const
{
    uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard.v.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    for (auto &shard : shards_)
        shard.v.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram

int
Histogram::bucketIndex(uint64_t value)
{
    if (value < static_cast<uint64_t>(kSub))
        return static_cast<int>(value);
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - kSubBits;
    const int sub = static_cast<int>((value >> shift) & (kSub - 1));
    return ((msb - kSubBits + 1) << kSubBits) + sub;
}

void
Histogram::bucketBounds(int index, double *low, double *high)
{
    MIRAGE_DASSERT(index >= 0 && index < kBuckets, "bucket index range");
    if (index < kSub) {
        *low = index;
        *high = index + 1;
        return;
    }
    const int octave = index >> kSubBits; // >= 1
    const int sub = index & (kSub - 1);
    const int msb = octave + kSubBits - 1;
    const double width = std::ldexp(1.0, msb - kSubBits);
    *low = std::ldexp(1.0, msb) + sub * width;
    *high = *low + width;
}

void
Histogram::aggregate(uint64_t *out) const
{
    std::fill(out, out + kBuckets, 0);
    for (const auto &shard : shards_)
        for (int b = 0; b < kBuckets; ++b)
            out[b] += shard.buckets[b].load(std::memory_order_relaxed);
}

uint64_t
Histogram::count() const
{
    uint64_t total = 0;
    for (const auto &shard : shards_)
        for (int b = 0; b < kBuckets; ++b)
            total += shard.buckets[b].load(std::memory_order_relaxed);
    return total;
}

namespace {

double
bucketMidpoint(int index)
{
    double lo = 0.0;
    double hi = 0.0;
    Histogram::bucketBounds(index, &lo, &hi);
    return lo + (hi - lo) * 0.5;
}

/** Nearest-rank quantile over aggregated buckets: the value whose
 *  cumulative count first reaches ceil(q * count) — the same rank
 *  convention as serve::ServerStats' exact sorted-sample percentile, so
 *  the two can be cross-checked on identical samples. */
double
bucketQuantile(const uint64_t *buckets, uint64_t count, double q)
{
    if (count == 0)
        return 0.0;
    uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
    rank = std::clamp<uint64_t>(rank, 1, count);
    uint64_t seen = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
        seen += buckets[b];
        if (seen >= rank)
            return bucketMidpoint(b);
    }
    return bucketMidpoint(Histogram::kBuckets - 1);
}

} // namespace

HistogramSnapshot
Histogram::snapshot() const
{
    std::vector<uint64_t> buckets(kBuckets, 0);
    aggregate(buckets.data());

    HistogramSnapshot snap;
    uint64_t sum = 0;
    for (const auto &shard : shards_)
        sum += shard.sum.load(std::memory_order_relaxed);
    int lowest = -1;
    int highest = -1;
    for (int b = 0; b < kBuckets; ++b) {
        if (buckets[b] == 0)
            continue;
        snap.count += buckets[b];
        if (lowest < 0)
            lowest = b;
        highest = b;
    }
    snap.sum = static_cast<double>(sum);
    if (snap.count == 0)
        return snap;
    snap.mean = snap.sum / static_cast<double>(snap.count);
    double hi = 0.0;
    bucketBounds(lowest, &snap.min, &hi);
    snap.max = bucketMidpoint(highest);
    snap.p50 = bucketQuantile(buckets.data(), snap.count, 0.50);
    snap.p95 = bucketQuantile(buckets.data(), snap.count, 0.95);
    snap.p99 = bucketQuantile(buckets.data(), snap.count, 0.99);
    return snap;
}

void
Histogram::reset()
{
    for (auto &shard : shards_) {
        for (int b = 0; b < kBuckets; ++b)
            shard.buckets[b].store(0, std::memory_order_relaxed);
        shard.sum.store(0, std::memory_order_relaxed);
    }
}

// ---------------------------------------------------------------------------
// MetricsRegistry

struct MetricsRegistry::Impl
{
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked: recording must stay safe from detached threads and static
    // destructors (same lifetime policy as ThreadPool::global()).
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto &slot = impl_->counters[name];
    if (!slot)
        slot = std::make_unique<Counter>(name);
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto &slot = impl_->gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>(name);
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto &slot = impl_->histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(name);
    return *slot;
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->counters.find(name);
    return it == impl_->counters.end() ? nullptr : it->second.get();
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->gauges.find(name);
    return it == impl_->gauges.end() ? nullptr : it->second.get();
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->histograms.find(name);
    return it == impl_->histograms.end() ? nullptr : it->second.get();
}

namespace {

std::string
promName(const std::string &dotted)
{
    std::string out = "mirage_";
    for (char c : dotted) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/// %g-style formatting that never emits locale-dependent separators.
std::string
fmtDouble(double v)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.precision(12);
    os << v;
    return os.str();
}

} // namespace

void
MetricsRegistry::renderText(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto &[name, c] : impl_->counters) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " counter\n";
        os << p << " " << c->value() << "\n";
    }
    for (const auto &[name, g] : impl_->gauges) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " gauge\n";
        os << p << " " << g->value() << "\n";
    }
    std::vector<uint64_t> buckets(Histogram::kBuckets, 0);
    for (const auto &[name, h] : impl_->histograms) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " histogram\n";
        h->aggregate(buckets.data());
        uint64_t cumulative = 0;
        uint64_t total = 0;
        for (int b = 0; b < Histogram::kBuckets; ++b)
            total += buckets[b];
        for (int b = 0; b < Histogram::kBuckets; ++b) {
            if (buckets[b] == 0)
                continue;
            cumulative += buckets[b];
            double lo = 0.0;
            double hi = 0.0;
            Histogram::bucketBounds(b, &lo, &hi);
            os << p << "_bucket{le=\"" << fmtDouble(hi) << "\"} " << cumulative
               << "\n";
        }
        os << p << "_bucket{le=\"+Inf\"} " << total << "\n";
        const HistogramSnapshot snap = h->snapshot();
        os << p << "_sum " << fmtDouble(snap.sum) << "\n";
        os << p << "_count " << total << "\n";
    }
}

void
MetricsRegistry::renderJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : impl_->counters) {
        os << (first ? "\n" : ",\n");
        os << "    \"" << jsonEscape(name) << "\": " << c->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : impl_->gauges) {
        os << (first ? "\n" : ",\n");
        os << "    \"" << jsonEscape(name) << "\": " << g->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : impl_->histograms) {
        const HistogramSnapshot s = h->snapshot();
        os << (first ? "\n" : ",\n");
        os << "    \"" << jsonEscape(name) << "\": {\"count\": " << s.count
           << ", \"sum\": " << fmtDouble(s.sum)
           << ", \"mean\": " << fmtDouble(s.mean)
           << ", \"min\": " << fmtDouble(s.min)
           << ", \"max\": " << fmtDouble(s.max)
           << ", \"p50\": " << fmtDouble(s.p50)
           << ", \"p95\": " << fmtDouble(s.p95)
           << ", \"p99\": " << fmtDouble(s.p99) << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

bool
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        MIRAGE_WARN("obs: cannot open metrics dump path '", path, "'");
        return false;
    }
    renderJson(os);
    os.flush();
    if (!os) {
        MIRAGE_WARN("obs: failed writing metrics dump to '", path, "'");
        return false;
    }
    return true;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (auto &kv : impl_->counters)
        kv.second->reset();
    for (auto &kv : impl_->gauges)
        kv.second->reset();
    for (auto &kv : impl_->histograms)
        kv.second->reset();
}

} // namespace obs
} // namespace mirage
