#ifndef MIRAGE_OBS_TRACE_H
#define MIRAGE_OBS_TRACE_H

/**
 * @file
 * RAII trace spans feeding per-thread ring buffers, exported as Chrome
 * trace-event JSON (loadable in Perfetto / chrome://tracing).
 *
 * A TraceSpan samples the monotonic clock at construction and destruction
 * and appends one fixed-size event to the calling thread's ring buffer.
 * RAII scoping guarantees spans on one thread are properly nested, which
 * is what bench/check_trace.py validates. Span names must be string
 * literals (or otherwise outlive the export): the event stores the
 * pointer, not a copy, so recording never allocates.
 *
 * Gating: tracing defaults off. MIRAGE_TRACE enables it — "1"/"true"/"on"
 * turn it on; any other non-empty, non-"0"/"false"/"off" value is treated
 * as an output path, turning tracing on AND exporting the trace there at
 * process exit. setTraceEnabled() flips it at runtime. A disabled span is
 * one relaxed load plus a branch — a few ns, asserted in tests.
 *
 * Determinism: clock samples go only into the ring buffers, never into
 * numeric state, so enabling tracing cannot perturb results (the
 * 1-vs-8-thread bit-equality suites run with tracing on).
 *
 * Rings hold the most recent kDefaultBufferCapacity events per thread;
 * older events are overwritten and tallied in traceDropped().
 */

#include <cstdint>
#include <iosfwd>
#include <string>

namespace mirage {
namespace obs {

/** True when span recording is on (MIRAGE_TRACE, default off). */
bool traceEnabled();

/** Flips span recording at runtime (overrides MIRAGE_TRACE). */
void setTraceEnabled(bool on);

/** Events per newly created per-thread ring (existing rings keep their
 *  size); 0 restores the default. Exposed so tests can exercise
 *  wrap-around cheaply. */
void setTraceBufferCapacity(size_t events);

/** Total events overwritten by ring wrap-around since the last clear. */
uint64_t traceDropped();

/** Drops every buffered event (buffers stay registered). Tests/benches. */
void clearTrace();

/** Writes all buffered spans as Chrome trace-event JSON ("ph":"X"
 *  complete events plus "s"/"t"/"f" flow events; ts/dur in microseconds,
 *  normalized so the earliest event starts at 0; tid = thread
 *  registration order; names are JSON-escaped defensively). */
void writeChromeTrace(std::ostream &os);

/** writeChromeTrace to `path`; returns false (and warns) on I/O failure. */
bool writeChromeTraceFile(const std::string &path);

/**
 * Records one flow-event point for request/flow `id` (phase 's' = start,
 * 't' = step, 'f' = finish). Chrome/Perfetto draw one arrow per id
 * connecting the points in timestamp order, which is how a request's
 * admit -> execute -> reply hops become a single causal arrow across
 * threads. Call inside an open TraceSpan on the same thread: flow points
 * bind to the enclosing slice (check_trace.py enforces this). No-op when
 * tracing is disabled; alloc-free on warm threads. `name` must be a
 * string literal.
 */
void traceFlow(const char *name, uint64_t id, char phase);

/** Human-readable summary of the buffered spans (per-name count/total/
 *  mean plus per-thread totals); serves the exporter's /tracez page. */
void writeTraceSummary(std::ostream &os);

namespace detail {

/** Monotonic nanoseconds (steady_clock). */
uint64_t nowNs();

/** Appends one complete event to the calling thread's ring buffer,
 *  creating and registering the ring on first use (the only allocating
 *  path — warm threads record allocation-free). */
void recordSpan(const char *name, uint64_t start_ns, uint64_t end_ns);

/** Appends one flow event (phase 's'/'t'/'f') stamped at nowNs(). */
void recordFlow(const char *name, uint64_t id, char phase);

} // namespace detail

/**
 * RAII scope timer. Constructing with tracing disabled is a no-op (name_
 * stays null); the destructor records only when the constructor armed it,
 * so a span straddling a setTraceEnabled(false) still completes cleanly.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name)
    {
        if (traceEnabled()) {
            name_ = name;
            start_ns_ = detail::nowNs();
        }
    }

    ~TraceSpan()
    {
        if (name_ != nullptr)
            detail::recordSpan(name_, start_ns_, detail::nowNs());
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name_ = nullptr;
    uint64_t start_ns_ = 0;
};

} // namespace obs
} // namespace mirage

/// Scoped span with a unique variable name; `name` must be a literal.
#define MIRAGE_SPAN_CAT2(a, b) a##b
#define MIRAGE_SPAN_CAT(a, b) MIRAGE_SPAN_CAT2(a, b)
#define MIRAGE_SPAN(name)                                                      \
    ::mirage::obs::TraceSpan MIRAGE_SPAN_CAT(mirage_span_, __LINE__)(name)

#endif // MIRAGE_OBS_TRACE_H
