#ifndef MIRAGE_OBS_CONTEXT_H
#define MIRAGE_OBS_CONTEXT_H

/**
 * @file
 * Request-scoped trace context: a 64-bit request id that rides along the
 * serving and training hot paths, plus the fixed-size per-request record
 * the reply carries and the flight recorder rings.
 *
 * The context is one thread-local integer. RequestScope saves/restores it
 * RAII-style, so propagating an id across the serve admit -> batcher ->
 * engine dispatcher -> pool-thread chain costs a couple of moves of a
 * register-sized value — no heap allocation, no atomics, no clock reads.
 * RuntimeEngine snapshots currentRequestId() into its job structs at
 * submit time and re-establishes it on the executing thread, which is how
 * an id crosses threads.
 *
 * Ids come from nextRequestId(), a process-wide relaxed atomic counter
 * starting at 1; 0 means "no request context". Ids never feed numeric
 * state, so the determinism contracts are untouched.
 *
 * RequestRecord is deliberately a flat POD (no strings, no pointers): the
 * flight recorder stores these in a preallocated ring that a fatal-signal
 * handler must be able to walk and format without allocating, so the
 * JSONL formatter below is async-signal-safe (manual integer formatting,
 * no locale, no FILE*).
 */

#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace mirage {
namespace obs {

/** Allocates a fresh process-unique request id (monotonic, starts at 1). */
uint64_t nextRequestId();

/** The calling thread's current request id; 0 when outside any request. */
uint64_t currentRequestId();

/** Sets the calling thread's current request id (prefer RequestScope). */
void setCurrentRequestId(uint64_t id);

/**
 * RAII request-id scope: installs `id` as the calling thread's current
 * request id and restores the previous value on destruction. Cheap enough
 * for per-shard use (two thread-local moves; pinned at a few ns by
 * test_obs/obs_overhead).
 */
class RequestScope
{
  public:
    explicit RequestScope(uint64_t id)
    {
        prev_ = currentRequestId();
        setCurrentRequestId(id);
    }

    ~RequestScope() { setCurrentRequestId(prev_); }

    RequestScope(const RequestScope &) = delete;
    RequestScope &operator=(const RequestScope &) = delete;

  private:
    uint64_t prev_ = 0;
};

/** SLO-class codes stored in RequestRecord (POD-friendly; see
 *  requestClassName for the JSONL spelling). */
constexpr uint8_t kClassInteractive = 0;
constexpr uint8_t kClassBatch = 1;
constexpr uint8_t kClassTrain = 2;

/** Stable string for a RequestRecord class code. */
const char *requestClassName(uint8_t cls);

/**
 * One request's structured completion record: where the wall time went
 * (queue/execute/reply shares), what served it (tile, batch, cache), and
 * what the accelerator models charged (modeled ns/nJ). Flat POD so the
 * flight recorder's signal path can copy and format it without touching
 * the allocator.
 */
struct RequestRecord
{
    uint64_t id = 0;         ///< Request id (nextRequestId), 0 = invalid.
    uint64_t batch_seq = 0;  ///< Micro-batch sequence number (or train step).
    uint8_t cls = kClassInteractive; ///< kClass* code.
    bool cache_hit = false;  ///< Weights were already programmed.
    bool deadline_met = true;
    bool shed = false;       ///< Rejected at admission (load shed).
    int32_t tile = -1;       ///< Engine tile the batch ran on.
    int32_t batch_size = 0;  ///< Requests fused into the micro-batch.
    uint64_t queue_ns = 0;   ///< Admission -> dispatch.
    uint64_t execute_ns = 0; ///< Dispatch -> batch completion.
    uint64_t reply_ns = 0;   ///< Completion -> this request's reply.
    uint64_t total_ns = 0;   ///< Admission -> reply.
    uint64_t modeled_ns = 0; ///< Modeled accelerator time share.
    uint64_t modeled_nj = 0; ///< Modeled energy share.
};

/** Upper bound on one formatted RequestRecord JSONL line (incl. '\n'). */
constexpr size_t kRequestJsonlMax = 512;

/**
 * Formats `rec` as one JSONL line (trailing '\n', no NUL) into `buf`.
 * Returns the number of bytes written, at most min(cap, kRequestJsonlMax).
 * Async-signal-safe: integer formatting only.
 */
size_t formatRequestJsonl(const RequestRecord &rec, char *buf, size_t cap);

/** Streams formatRequestJsonl's line for `rec` (non-signal contexts). */
void writeRequestJsonl(std::ostream &os, const RequestRecord &rec);

} // namespace obs
} // namespace mirage

#endif // MIRAGE_OBS_CONTEXT_H
