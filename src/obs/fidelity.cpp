#include "obs/fidelity.h"

#include <algorithm>
#include <cinttypes>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace mirage {
namespace obs {
namespace fidelity {

namespace detail {
std::atomic<int64_t> g_probe_interval{-1};
} // namespace detail

namespace {

bool
envWordIs(const char *value, const char *a, const char *b, const char *c)
{
    return std::strcmp(value, a) == 0 || std::strcmp(value, b) == 0 ||
           std::strcmp(value, c) == 0;
}

/// Per-layer probe aggregates. Histogram/Counter handles live in
/// MetricsRegistry (stable for the process); the Series handle is immortal
/// (see the series registry below), so cached entries never dangle.
struct LayerEntry
{
    Counter *probes = nullptr;
    Histogram *rmse_bits = nullptr;
    Histogram *maxrel_bits = nullptr;
    Series *err = nullptr;
};

/// Process-wide fidelity state (leaked singleton, same lifetime contract
/// as MetricsRegistry: safe from static destructors and detached threads).
struct State
{
    std::mutex layers_mu;
    std::map<std::string, LayerEntry> layers;

    std::mutex series_mu;
    std::map<std::string, Series *> series;

    std::mutex listeners_mu;
    std::map<uint64_t, std::function<void(const DriftAlert &)>> listeners;
    uint64_t next_listener = 1;

    /// Every fidelity.* metric handle ever registered, so resetForTest can
    /// zero them without a prefix-reset API on MetricsRegistry.
    std::mutex handles_mu;
    std::vector<Counter *> counters;
    std::vector<Gauge *> gauges;
    std::vector<Histogram *> histograms;

    std::atomic<int64_t> rns_margin_min{INT64_MAX};
    std::atomic<int64_t> snr_db_min{INT64_MAX};
};

State &
state()
{
    static State *s = new State;
    return *s;
}

template <typename T>
void
track(std::vector<T *> &list, T *handle)
{
    if (std::find(list.begin(), list.end(), handle) == list.end())
        list.push_back(handle);
}

Counter &
fidCounter(const std::string &name)
{
    Counter &c = MetricsRegistry::global().counter(name);
    State &st = state();
    std::lock_guard<std::mutex> lock(st.handles_mu);
    track(st.counters, &c);
    return c;
}

Gauge &
fidGauge(const std::string &name)
{
    Gauge &g = MetricsRegistry::global().gauge(name);
    State &st = state();
    std::lock_guard<std::mutex> lock(st.handles_mu);
    track(st.gauges, &g);
    return g;
}

Histogram &
fidHistogram(const std::string &name)
{
    Histogram &h = MetricsRegistry::global().histogram(name);
    State &st = state();
    std::lock_guard<std::mutex> lock(st.handles_mu);
    track(st.histograms, &h);
    return h;
}

/// Lowers the atomic running minimum and mirrors it into the gauge.
/// Last-write races between near-simultaneous improvements can leave the
/// gauge one update stale; the atomic itself is exact and re-converges on
/// the next improvement.
void
lowerMin(std::atomic<int64_t> &min_slot, Gauge &gauge, int64_t candidate)
{
    int64_t cur = min_slot.load(std::memory_order_relaxed);
    while (candidate < cur) {
        if (min_slot.compare_exchange_weak(cur, candidate,
                                           std::memory_order_relaxed)) {
            gauge.set(min_slot.load(std::memory_order_relaxed));
            return;
        }
    }
}

int
bitWidth128(unsigned __int128 v)
{
    const uint64_t hi = static_cast<uint64_t>(v >> 64);
    if (hi != 0)
        return 128 - __builtin_clzll(hi);
    const uint64_t lo = static_cast<uint64_t>(v);
    return (lo != 0) ? 64 - __builtin_clzll(lo) : 0;
}

/// "Matching bits" encoding of a relative error: round(-log2(err)) clamped
/// to [0, 64]. err <= 0 (bit-exact) maps to 64; err >= 1 maps to 0.
uint64_t
errorBits(double relative_error)
{
    if (!(relative_error > 0.0))
        return 64;
    const double bits = -std::log2(relative_error);
    if (bits <= 0.0)
        return 0;
    if (bits >= 64.0)
        return 64;
    return static_cast<uint64_t>(std::lround(bits));
}

thread_local const char *t_layer = "";

/// JSON-safe number: shortest round-trip float, non-finites mapped to 0.
std::string
jnum(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
jsonHistogram(std::ostream &os, const Histogram &h)
{
    const HistogramSnapshot s = h.snapshot();
    os << "{\"count\": " << s.count << ", \"sum\": " << jnum(s.sum)
       << ", \"mean\": " << jnum(s.mean) << ", \"min\": " << jnum(s.min)
       << ", \"max\": " << jnum(s.max) << ", \"p50\": " << jnum(s.p50)
       << ", \"p95\": " << jnum(s.p95) << ", \"p99\": " << jnum(s.p99) << "}";
}

uint64_t
counterValue(const char *name)
{
    const Counter *c = MetricsRegistry::global().findCounter(name);
    return c ? c->value() : 0;
}

} // namespace

// ---------------------------------------------------------------------------
// Probe gating

namespace detail {

int64_t
initProbeInterval()
{
    const char *env = std::getenv("MIRAGE_FIDELITY");
    int64_t init = 0;
    if (env != nullptr && *env != '\0') {
        if (envWordIs(env, "0", "off", "false")) {
            init = 0;
        } else if (envWordIs(env, "1", "on", "true")) {
            init = 1;
        } else {
            char *end = nullptr;
            const long long parsed = std::strtoll(env, &end, 10);
            if (end != nullptr && *end == '\0' && parsed > 0) {
                init = parsed;
            } else {
                MIRAGE_WARN("ignoring MIRAGE_FIDELITY: expected off/on or a "
                            "positive probe interval, got \"", env, "\"");
                init = 0;
            }
        }
    }
    int64_t expected = -1;
    // First caller wins; a concurrent setProbeInterval() is preserved.
    g_probe_interval.compare_exchange_strong(expected, init,
                                             std::memory_order_relaxed);
    return g_probe_interval.load(std::memory_order_relaxed);
}

} // namespace detail

void
setProbeInterval(uint64_t every_n)
{
    detail::g_probe_interval.store(static_cast<int64_t>(std::min<uint64_t>(
                                       every_n, INT64_MAX)),
                                   std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Layer attribution

LayerScope::LayerScope(const char *layer) : prev_(t_layer)
{
    t_layer = (layer != nullptr) ? layer : "";
}

LayerScope::~LayerScope() { t_layer = prev_; }

const char *
currentLayer()
{
    return t_layer;
}

// ---------------------------------------------------------------------------
// Shadow probes

void
recordProbe(const char *site, std::span<const float> actual,
            std::span<const float> reference)
{
    static Counter &probes = fidCounter("fidelity.probes");

    const size_t n = std::min(actual.size(), reference.size());
    double sum_sq_err = 0.0;
    double sum_sq_ref = 0.0;
    double max_abs_err = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(actual[i]) - reference[i];
        sum_sq_err += d * d;
        sum_sq_ref += static_cast<double>(reference[i]) * reference[i];
        max_abs_err = std::max(max_abs_err, std::fabs(d));
    }
    const double denom =
        (n > 0) ? std::sqrt(sum_sq_ref / static_cast<double>(n)) + 1e-30
                : 1e-30;
    const double rel_rmse =
        (n > 0) ? std::sqrt(sum_sq_err / static_cast<double>(n)) / denom : 0.0;
    const double rel_max = max_abs_err / denom;

    const char *layer = currentLayer();
    const std::string label = (layer[0] != '\0') ? layer
                              : (site != nullptr && site[0] != '\0') ? site
                                                                     : "unknown";

    LayerEntry entry;
    {
        State &st = state();
        std::lock_guard<std::mutex> lock(st.layers_mu);
        LayerEntry &slot = st.layers[label];
        if (slot.probes == nullptr) {
            slot.probes = &fidCounter("fidelity.probe.calls." + label);
            slot.rmse_bits = &fidHistogram("fidelity.probe.rmse_bits." + label);
            slot.maxrel_bits =
                &fidHistogram("fidelity.probe.maxrel_bits." + label);
            // Error series alert on accuracy *loss* (bits dropping), not on
            // improvement.
            SeriesConfig cfg;
            cfg.alert_up = false;
            cfg.alert_down = true;
            slot.err = &series("fidelity.err." + label, cfg);
        }
        entry = slot;
    }

    const uint64_t rmse_bits = errorBits(rel_rmse);
    const uint64_t maxrel_bits = errorBits(rel_max);
    probes.add(1);
    entry.probes->add(1);
    entry.rmse_bits->record(rmse_bits);
    entry.maxrel_bits->record(maxrel_bits);
    // Outside the layers lock: the series may fan a drift alert out to
    // listeners, which must never run under fidelity locks.
    entry.err->observe(static_cast<double>(rmse_bits));
}

// ---------------------------------------------------------------------------
// Always-on health counters

int
recordRnsMargin(uint64_t modulus, int64_t accum_len)
{
    static Counter &checks = fidCounter("fidelity.rns.dot_checks");
    static Counter &risk = fidCounter("fidelity.rns.overflow_risk");
    static Histogram &used = fidHistogram("fidelity.rns.range_used_bits");
    static Gauge &min_gauge = fidGauge("fidelity.rns.overflow_margin_min");

    unsigned __int128 worst = 0;
    if (modulus > 1 && accum_len > 0) {
        const unsigned __int128 sq =
            static_cast<unsigned __int128>(modulus - 1) * (modulus - 1);
        worst = sq * static_cast<unsigned __int128>(accum_len);
    }
    const int used_bits = bitWidth128(worst);
    const int margin = 64 - used_bits;

    checks.add(1);
    used.record(static_cast<uint64_t>(used_bits));
    if (margin < 0)
        risk.add(1);
    lowerMin(state().rns_margin_min, min_gauge, margin);
    return margin;
}

void
noteRnsReducedFallback()
{
    static Counter &fallbacks = fidCounter("fidelity.rns.reduced_fallbacks");
    fallbacks.add(1);
}

void
noteBfpGroup(int shared_exponent, int clipped_mantissas)
{
    static Counter &groups = fidCounter("fidelity.bfp.groups");
    static Counter &clipped = fidCounter("fidelity.bfp.clipped_mantissas");
    static Histogram &exponents = fidHistogram("fidelity.bfp.exponent_bias128");

    groups.add(1);
    // Bias by +128 so the full float exponent range stays a valid
    // (non-negative) histogram value; clamp pathological inputs.
    const int biased = std::clamp(shared_exponent + 128, 0, 4096);
    exponents.record(static_cast<uint64_t>(biased));
    if (clipped_mantissas > 0)
        clipped.add(static_cast<uint64_t>(clipped_mantissas));
}

void
noteSnrDb(double snr_db)
{
    static Histogram &hist = fidHistogram("fidelity.photonic.snr_db");
    static Gauge &min_gauge = fidGauge("fidelity.photonic.snr_db_min");

    const int64_t db =
        (std::isfinite(snr_db) && snr_db > 0.0) ? std::llround(snr_db) : 0;
    hist.record(static_cast<uint64_t>(db));
    lowerMin(state().snr_db_min, min_gauge, db);
}

void
notePhotonicProbe(uint64_t residues_checked, uint64_t mismatches)
{
    static Counter &probes = fidCounter("fidelity.photonic.mvm_probes");
    static Counter &checked = fidCounter("fidelity.photonic.residue_checks");
    static Counter &errors = fidCounter("fidelity.photonic.residue_errors");

    probes.add(1);
    checked.add(residues_checked);
    if (mismatches > 0)
        errors.add(mismatches);
}

// ---------------------------------------------------------------------------
// Drift detection

void
DriftConfig::validate() const
{
    if (!(alpha > 0.0) || alpha > 1.0)
        throw std::invalid_argument("DriftConfig alpha must be in (0, 1]");
    if (!(slack >= 0.0))
        throw std::invalid_argument("DriftConfig slack must be >= 0");
    if (!(threshold > 0.0))
        throw std::invalid_argument("DriftConfig threshold must be > 0");
    if (min_samples < 1)
        throw std::invalid_argument("DriftConfig min_samples must be >= 1");
}

const char *
toString(DriftDirection direction)
{
    switch (direction) {
      case DriftDirection::Up: return "up";
      case DriftDirection::Down: return "down";
    }
    return "?";
}

DriftDetector::DriftDetector(DriftConfig cfg) : cfg_(cfg) { cfg_.validate(); }

std::optional<DriftAlert>
DriftDetector::observe(double t_s, double value)
{
    if (!std::isfinite(t_s))
        t_s = last_t_;
    if (t_s < last_t_)
        t_s = last_t_; // clock regressions clamp, mirroring SloMonitor
    last_t_ = t_s;

    ++samples_;
    if (samples_ == 1)
        ewma_ = value;
    else
        ewma_ = cfg_.alpha * value + (1.0 - cfg_.alpha) * ewma_;

    if (samples_ <= cfg_.min_samples) {
        // Cold start: the first min_samples observations define the
        // baseline (their running mean) and can never alert.
        baseline_ += (value - baseline_) / static_cast<double>(samples_);
        return std::nullopt;
    }

    const double d = ewma_ - baseline_;
    cusum_up_ = std::max(0.0, cusum_up_ + d - cfg_.slack);
    cusum_down_ = std::max(0.0, cusum_down_ - d - cfg_.slack);

    std::optional<DriftAlert> alert;
    if (cusum_up_ > cfg_.threshold) {
        if (!firing_up_) {
            firing_up_ = true;
            DriftAlert a;
            a.direction = DriftDirection::Up;
            a.at_s = t_s;
            a.value = ewma_;
            a.baseline = baseline_;
            a.cusum = cusum_up_;
            a.threshold = cfg_.threshold;
            a.samples = samples_;
            alert = a;
        }
    } else {
        firing_up_ = false;
    }
    if (cusum_down_ > cfg_.threshold) {
        // An up-alert on the same observation wins the (practically
        // impossible) tie; the down latch still arms so it stays
        // rising-edge-only.
        if (!firing_down_ && !alert) {
            DriftAlert a;
            a.direction = DriftDirection::Down;
            a.at_s = t_s;
            a.value = ewma_;
            a.baseline = baseline_;
            a.cusum = cusum_down_;
            a.threshold = cfg_.threshold;
            a.samples = samples_;
            alert = a;
        }
        firing_down_ = true;
    } else {
        firing_down_ = false;
    }
    return alert;
}

DriftStatus
DriftDetector::status() const
{
    DriftStatus s;
    s.samples = samples_;
    s.baseline = baseline_;
    s.ewma = ewma_;
    s.cusum_up = cusum_up_;
    s.cusum_down = cusum_down_;
    s.firing_up = firing_up_;
    s.firing_down = firing_down_;
    return s;
}

// ---------------------------------------------------------------------------
// Series registry + alert fan-out

struct Series::Impl
{
    mutable std::mutex mu;
    DriftDetector det;
    uint64_t next_index = 0;
    std::atomic<uint64_t> alerts{0};

    explicit Impl(const DriftConfig &cfg) : det(cfg) {}
};

namespace {

void
fanOut(const DriftAlert &alert)
{
    static Counter &alerts = fidCounter("fidelity.drift.alerts");
    alerts.add(1);
    FlightRecorder::global().trigger("fidelity_drift");

    std::vector<std::function<void(const DriftAlert &)>> listeners;
    {
        State &st = state();
        std::lock_guard<std::mutex> lock(st.listeners_mu);
        listeners.reserve(st.listeners.size());
        for (const auto &kv : st.listeners)
            listeners.push_back(kv.second);
    }
    for (const auto &fn : listeners)
        fn(alert);
}

} // namespace

Series::Series(std::string name, SeriesConfig cfg)
    : impl_(new Impl(cfg.drift)), name_(std::move(name)), cfg_(cfg)
{
}

void
Series::dispatch(std::optional<DriftAlert> alert)
{
    if (!alert)
        return;
    const bool wanted = (alert->direction == DriftDirection::Up)
                            ? cfg_.alert_up
                            : cfg_.alert_down;
    if (!wanted)
        return;
    alert->series = name_;
    impl_->alerts.fetch_add(1, std::memory_order_relaxed);
    fanOut(*alert);
}

void
Series::observe(double value)
{
    std::optional<DriftAlert> alert;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        const double t = static_cast<double>(impl_->next_index++);
        alert = impl_->det.observe(t, value);
    }
    dispatch(std::move(alert));
}

void
Series::observeAt(double t_s, double value)
{
    std::optional<DriftAlert> alert;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        ++impl_->next_index;
        alert = impl_->det.observe(t_s, value);
    }
    dispatch(std::move(alert));
}

DriftStatus
Series::status() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->det.status();
}

uint64_t
Series::alerts() const
{
    return impl_->alerts.load(std::memory_order_relaxed);
}

Series &
series(const std::string &name, const SeriesConfig &cfg)
{
    State &st = state();
    std::lock_guard<std::mutex> lock(st.series_mu);
    auto it = st.series.find(name);
    if (it != st.series.end())
        return *it->second;
    // Immortal, like MetricsRegistry handles: cached Series pointers stay
    // valid for the process lifetime (resetForTest only clears state).
    Series *s = new Series(name, cfg);
    st.series.emplace(name, s);
    return *s;
}

uint64_t
addAlertListener(std::function<void(const DriftAlert &)> fn)
{
    State &st = state();
    std::lock_guard<std::mutex> lock(st.listeners_mu);
    const uint64_t token = st.next_listener++;
    st.listeners.emplace(token, std::move(fn));
    return token;
}

void
removeAlertListener(uint64_t token)
{
    State &st = state();
    std::lock_guard<std::mutex> lock(st.listeners_mu);
    st.listeners.erase(token);
}

// ---------------------------------------------------------------------------
// Exposition

void
writeSummary(std::ostream &os)
{
    State &st = state();
    os << "fidelity probes: interval=" << probeInterval()
       << " total=" << counterValue("fidelity.probes") << "\n";

    std::map<std::string, LayerEntry> layers;
    {
        std::lock_guard<std::mutex> lock(st.layers_mu);
        layers = st.layers;
    }
    for (const auto &kv : layers) {
        const HistogramSnapshot rmse = kv.second.rmse_bits->snapshot();
        const HistogramSnapshot maxrel = kv.second.maxrel_bits->snapshot();
        os << "layer " << kv.first << ": probes=" << kv.second.probes->value()
           << " rmse_bits{p50=" << jnum(rmse.p50) << " min=" << jnum(rmse.min)
           << "} maxrel_bits{p50=" << jnum(maxrel.p50)
           << " min=" << jnum(maxrel.min) << "}\n";
    }

    const int64_t margin_min = st.rns_margin_min.load(std::memory_order_relaxed);
    os << "rns: dot_checks=" << counterValue("fidelity.rns.dot_checks")
       << " overflow_margin_min=";
    if (margin_min == INT64_MAX)
        os << "n/a";
    else
        os << margin_min;
    os << " overflow_risk=" << counterValue("fidelity.rns.overflow_risk")
       << " reduced_fallbacks="
       << counterValue("fidelity.rns.reduced_fallbacks") << "\n";

    os << "bfp: groups=" << counterValue("fidelity.bfp.groups")
       << " clipped_mantissas="
       << counterValue("fidelity.bfp.clipped_mantissas") << "\n";

    const int64_t snr_min = st.snr_db_min.load(std::memory_order_relaxed);
    os << "photonic: snr_db_min=";
    if (snr_min == INT64_MAX)
        os << "n/a";
    else
        os << snr_min;
    os << " mvm_probes=" << counterValue("fidelity.photonic.mvm_probes")
       << " residue_errors="
       << counterValue("fidelity.photonic.residue_errors") << "\n";

    std::map<std::string, Series *> all_series;
    {
        std::lock_guard<std::mutex> lock(st.series_mu);
        all_series = st.series;
    }
    for (const auto &kv : all_series) {
        const DriftStatus s = kv.second->status();
        os << "drift " << kv.first << ": samples=" << s.samples
           << " baseline=" << jnum(s.baseline) << " ewma=" << jnum(s.ewma)
           << " cusum_up=" << jnum(s.cusum_up)
           << " cusum_down=" << jnum(s.cusum_down) << " firing="
           << (s.firing_up ? "up" : s.firing_down ? "down" : "none")
           << " alerts=" << kv.second->alerts() << "\n";
    }
}

void
writeReport(std::ostream &os)
{
    State &st = state();
    os << "{\n  \"probe_interval\": " << probeInterval()
       << ",\n  \"probes\": " << counterValue("fidelity.probes")
       << ",\n  \"layers\": {";

    std::map<std::string, LayerEntry> layers;
    {
        std::lock_guard<std::mutex> lock(st.layers_mu);
        layers = st.layers;
    }
    bool first = true;
    for (const auto &kv : layers) {
        os << (first ? "" : ",") << "\n    \"" << kv.first
           << "\": {\"probes\": " << kv.second.probes->value()
           << ", \"rmse_bits\": ";
        jsonHistogram(os, *kv.second.rmse_bits);
        os << ", \"maxrel_bits\": ";
        jsonHistogram(os, *kv.second.maxrel_bits);
        os << "}";
        first = false;
    }
    os << (layers.empty() ? "" : "\n  ") << "},\n";

    const int64_t margin_min = st.rns_margin_min.load(std::memory_order_relaxed);
    os << "  \"rns\": {\"dot_checks\": "
       << counterValue("fidelity.rns.dot_checks")
       << ", \"overflow_margin_min\": "
       << ((margin_min == INT64_MAX) ? 64 : margin_min)
       << ", \"overflow_risk\": "
       << counterValue("fidelity.rns.overflow_risk")
       << ", \"reduced_fallbacks\": "
       << counterValue("fidelity.rns.reduced_fallbacks") << "},\n";

    os << "  \"bfp\": {\"groups\": " << counterValue("fidelity.bfp.groups")
       << ", \"clipped_mantissas\": "
       << counterValue("fidelity.bfp.clipped_mantissas") << "},\n";

    const int64_t snr_min = st.snr_db_min.load(std::memory_order_relaxed);
    os << "  \"photonic\": {\"snr_db_min\": "
       << ((snr_min == INT64_MAX) ? 0 : snr_min)
       << ", \"mvm_probes\": " << counterValue("fidelity.photonic.mvm_probes")
       << ", \"residue_checks\": "
       << counterValue("fidelity.photonic.residue_checks")
       << ", \"residue_errors\": "
       << counterValue("fidelity.photonic.residue_errors") << "},\n";

    std::map<std::string, Series *> all_series;
    {
        std::lock_guard<std::mutex> lock(st.series_mu);
        all_series = st.series;
    }
    os << "  \"drift\": {\"alerts\": "
       << counterValue("fidelity.drift.alerts") << ", \"series\": {";
    first = true;
    for (const auto &kv : all_series) {
        const DriftStatus s = kv.second->status();
        os << (first ? "" : ",") << "\n    \"" << kv.first
           << "\": {\"samples\": " << s.samples
           << ", \"baseline\": " << jnum(s.baseline)
           << ", \"ewma\": " << jnum(s.ewma)
           << ", \"cusum_up\": " << jnum(s.cusum_up)
           << ", \"cusum_down\": " << jnum(s.cusum_down)
           << ", \"firing_up\": " << (s.firing_up ? "true" : "false")
           << ", \"firing_down\": " << (s.firing_down ? "true" : "false")
           << ", \"alerts\": " << kv.second->alerts() << "}";
        first = false;
    }
    os << (all_series.empty() ? "" : "\n  ") << "}}\n}\n";
}

bool
writeReportFile(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        MIRAGE_WARN("cannot open fidelity report path ", path);
        return false;
    }
    writeReport(out);
    out.flush();
    if (!out) {
        MIRAGE_WARN("short write on fidelity report path ", path);
        return false;
    }
    return true;
}

void
resetForTest()
{
    State &st = state();
    {
        std::lock_guard<std::mutex> lock(st.handles_mu);
        for (Counter *c : st.counters)
            c->reset();
        for (Gauge *g : st.gauges)
            g->reset();
        for (Histogram *h : st.histograms)
            h->reset();
    }
    {
        std::lock_guard<std::mutex> lock(st.layers_mu);
        st.layers.clear();
    }
    {
        std::lock_guard<std::mutex> lock(st.series_mu);
        for (auto &kv : st.series) {
            Series *s = kv.second;
            std::lock_guard<std::mutex> series_lock(s->impl_->mu);
            s->impl_->det = DriftDetector(s->cfg_.drift);
            s->impl_->next_index = 0;
            s->impl_->alerts.store(0, std::memory_order_relaxed);
        }
    }
    {
        std::lock_guard<std::mutex> lock(st.listeners_mu);
        st.listeners.clear();
    }
    st.rns_margin_min.store(INT64_MAX, std::memory_order_relaxed);
    st.snr_db_min.store(INT64_MAX, std::memory_order_relaxed);
}

} // namespace fidelity
} // namespace obs
} // namespace mirage
