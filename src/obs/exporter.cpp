#include "obs/exporter.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"
#include "obs/fidelity.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mirage {
namespace obs {

namespace {

/** Reads until the header terminator, a small cap, EOF, or timeout. A
 *  recv() interrupted by a signal (EINTR) is retried; the SO_RCVTIMEO on
 *  the socket still bounds a stalled client. */
std::string
readRequest(int fd)
{
    std::string req;
    char buf[1024];
    while (req.size() < 8192) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        req.append(buf, static_cast<size_t>(n));
        if (req.find("\r\n\r\n") != std::string::npos)
            break;
    }
    return req;
}

void
sendResponse(int fd, const char *status, const std::string &body)
{
    std::string resp = "HTTP/1.1 ";
    resp += status;
    resp += "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8"
            "\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
    resp += body;
    writeAll(fd, resp.data(), resp.size());
}

} // namespace

bool
writeAll(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    size_t off = 0;
    bool use_send = true;
    while (off < len) {
        ssize_t n;
        if (use_send) {
            n = ::send(fd, p + off, len - off, MSG_NOSIGNAL);
            if (n < 0 && errno == ENOTSOCK) {
                // Plain descriptor (pipe/file): fall back to write().
                use_send = false;
                continue;
            }
        } else {
            n = ::write(fd, p + off, len - off);
        }
        if (n < 0) {
            if (errno == EINTR)
                continue; // interrupted before any byte moved: retry
            return false; // real error (e.g. peer closed the connection)
        }
        // A short write is progress, not failure: advance and retry the
        // remainder. (n == 0 on a stream socket/pipe only happens with
        // len == 0, which the loop condition already excludes.)
        off += static_cast<size_t>(n);
    }
    return true;
}

struct MetricsExporter::Impl
{
    int listen_fd = -1;
    int port = 0;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> served{0};
    std::thread server;

    void
    serveLoop()
    {
        while (!stop.load(std::memory_order_acquire)) {
            const int client = ::accept(listen_fd, nullptr, nullptr);
            if (client < 0) {
                if (stop.load(std::memory_order_acquire))
                    return;
                if (errno == EINTR)
                    continue;
                return; // listening socket torn down
            }
            // Bound the read so a stalled client cannot wedge the loop.
            timeval tv{};
            tv.tv_sec = 2;
            ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
            handle(client);
            ::close(client);
        }
    }

    void
    handle(int client)
    {
        const std::string req = readRequest(client);
        const size_t line_end = req.find("\r\n");
        const std::string line =
            line_end == std::string::npos ? req : req.substr(0, line_end);

        std::string method, path;
        {
            const size_t sp1 = line.find(' ');
            const size_t sp2 =
                sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
            if (sp1 != std::string::npos && sp2 != std::string::npos) {
                method = line.substr(0, sp1);
                path = line.substr(sp1 + 1, sp2 - sp1 - 1);
            }
        }
        if (method.empty()) {
            sendResponse(client, "400 Bad Request", "bad request\n");
            return;
        }
        if (method != "GET" && method != "HEAD") {
            sendResponse(client, "405 Method Not Allowed",
                         "only GET is supported\n");
            return;
        }

        served.fetch_add(1, std::memory_order_relaxed);
        if (path == "/metrics") {
            std::ostringstream os;
            MetricsRegistry::global().renderText(os);
            sendResponse(client, "200 OK", os.str());
        } else if (path == "/healthz") {
            sendResponse(client, "200 OK", "ok\n");
        } else if (path == "/tracez") {
            std::ostringstream os;
            writeTraceSummary(os);
            sendResponse(client, "200 OK", os.str());
        } else if (path == "/fidelityz") {
            std::ostringstream os;
            fidelity::writeSummary(os);
            sendResponse(client, "200 OK", os.str());
        } else {
            sendResponse(client, "404 Not Found",
                         "endpoints: /metrics /healthz /tracez /fidelityz\n");
        }
    }
};

MetricsExporter::MetricsExporter(int port) : impl_(std::make_unique<Impl>())
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error("MetricsExporter: socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(
            "MetricsExporter: cannot listen on 127.0.0.1:" +
            std::to_string(port) + " (" + std::strerror(err) + ")");
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) == 0)
        impl_->port = ntohs(bound.sin_port);
    else
        impl_->port = port;

    impl_->listen_fd = fd;
    impl_->server = std::thread([this] { impl_->serveLoop(); });
}

MetricsExporter::~MetricsExporter()
{
    impl_->stop.store(true, std::memory_order_release);
    // shutdown() unblocks the accept(); the loop then observes `stop`.
    ::shutdown(impl_->listen_fd, SHUT_RDWR);
    if (impl_->server.joinable())
        impl_->server.join();
    ::close(impl_->listen_fd);
}

int
MetricsExporter::port() const
{
    return impl_->port;
}

uint64_t
MetricsExporter::requestsServed() const
{
    return impl_->served.load(std::memory_order_relaxed);
}

MetricsExporter *
startExporterFromEnv()
{
    static MetricsExporter *exporter = [] () -> MetricsExporter * {
        const char *env = std::getenv("MIRAGE_METRICS_PORT");
        if (env == nullptr || env[0] == '\0')
            return nullptr;
        char *end = nullptr;
        const long port = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || port < 0 || port > 65535) {
            MIRAGE_WARN("MIRAGE_METRICS_PORT='", env,
                        "' is not a port number; exporter disabled");
            return nullptr;
        }
        try {
            auto *e = new MetricsExporter(static_cast<int>(port));
            MIRAGE_INFORM("metrics endpoint listening on 127.0.0.1:",
                          e->port(),
                          " (/metrics /healthz /tracez /fidelityz)");
            return e;
        } catch (const std::exception &ex) {
            MIRAGE_WARN("metrics exporter disabled: ", ex.what());
            return nullptr;
        }
    }();
    return exporter;
}

} // namespace obs
} // namespace mirage
