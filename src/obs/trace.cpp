#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace mirage {
namespace obs {

namespace {

constexpr size_t kDefaultBufferCapacity = size_t{1} << 15;

/// -1 = uninitialized (read MIRAGE_TRACE on first query), else 0/1.
std::atomic<int> g_trace_enabled{-1};
std::atomic<size_t> g_buffer_capacity{kDefaultBufferCapacity};

struct TraceEvent
{
    const char *name = nullptr;
    uint64_t start_ns = 0;
    uint64_t dur_ns = 0;
    uint64_t flow_id = 0; ///< Flow binding id (phase != 'X' only).
    char phase = 'X';     ///< 'X' complete, or 's'/'t'/'f' flow point.
};

/** One thread's ring. The owning thread appends under `mu`; the exporter
 *  snapshots under the same mutex, so export during live recording is
 *  race-free (the lock is uncontended in steady state — each thread owns
 *  its ring). */
struct TraceBuffer
{
    explicit TraceBuffer(size_t capacity) : events(capacity) {}

    std::mutex mu;
    std::vector<TraceEvent> events;
    size_t head = 0;       ///< next write index
    size_t filled = 0;     ///< valid events (<= events.size())
    uint64_t dropped = 0;  ///< events overwritten by wrap-around
    int tid = 0;           ///< registration order, stable across clears
};

struct TraceRegistry
{
    std::mutex mu;
    std::vector<TraceBuffer *> buffers; // leaked: threads may outlive main
};

TraceRegistry &
registry()
{
    static TraceRegistry *r = new TraceRegistry();
    return *r;
}

TraceBuffer *
registerBuffer()
{
    TraceRegistry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto *buf = new TraceBuffer(g_buffer_capacity.load(
        std::memory_order_relaxed));
    buf->tid = static_cast<int>(r.buffers.size());
    r.buffers.push_back(buf);
    return buf;
}

TraceBuffer *
threadBuffer()
{
    thread_local TraceBuffer *buf = registerBuffer();
    return buf;
}

/// Export path from a path-valued MIRAGE_TRACE; leaked for atexit safety.
std::string *g_exit_path = nullptr;

void
exportAtExit()
{
    if (g_exit_path != nullptr)
        writeChromeTraceFile(*g_exit_path);
}

void
initTraceFromEnv()
{
    const char *env = std::getenv("MIRAGE_TRACE");
    int init = 0;
    if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0 &&
        std::strcmp(env, "false") != 0 && std::strcmp(env, "off") != 0) {
        init = 1;
        if (std::strcmp(env, "1") != 0 && std::strcmp(env, "true") != 0 &&
            std::strcmp(env, "on") != 0) {
            // Path-valued: also export the trace there at process exit.
            g_exit_path = new std::string(env);
            std::atexit(exportAtExit);
        }
    }
    int expected = -1;
    g_trace_enabled.compare_exchange_strong(expected, init,
                                            std::memory_order_relaxed);
}

/** Microseconds with fixed 3-decimal nanosecond fraction, printed from
 *  integers so the validator can parse timestamps exactly. */
void
writeMicros(std::ostream &os, uint64_t ns)
{
    char frac[8];
    std::snprintf(frac, sizeof(frac), "%03u",
                  static_cast<unsigned>(ns % 1000));
    os << (ns / 1000) << '.' << frac;
}

/** JSON string escape for span names. Names are meant to be plain
 *  literals, but a quote, backslash, or control byte in one must not
 *  corrupt the whole export — Perfetto rejects the file wholesale. */
void
writeEscapedName(std::ostream &os, const char *name)
{
    for (const char *p = name; *p != '\0'; ++p) {
        const unsigned char c = static_cast<unsigned char>(*p);
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (c < 0x20) {
                char esc[8];
                std::snprintf(esc, sizeof(esc), "\\u%04x", c);
                os << esc;
            } else {
                os << *p;
            }
        }
    }
}

} // namespace

bool
traceEnabled()
{
    int state = g_trace_enabled.load(std::memory_order_relaxed);
    if (state < 0) {
        initTraceFromEnv();
        state = g_trace_enabled.load(std::memory_order_relaxed);
    }
    return state != 0;
}

void
setTraceEnabled(bool on)
{
    // Consume MIRAGE_TRACE before overriding: a path-valued variable
    // registers its atexit export during init, and that registration must
    // survive programs that also toggle tracing explicitly.
    if (g_trace_enabled.load(std::memory_order_relaxed) < 0)
        initTraceFromEnv();
    g_trace_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void
setTraceBufferCapacity(size_t events)
{
    if (events == 0)
        events = kDefaultBufferCapacity;
    g_buffer_capacity.store(events, std::memory_order_relaxed);
}

uint64_t
traceDropped()
{
    TraceRegistry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    uint64_t total = 0;
    for (TraceBuffer *buf : r.buffers) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        total += buf->dropped;
    }
    return total;
}

void
clearTrace()
{
    TraceRegistry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (TraceBuffer *buf : r.buffers) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        buf->head = 0;
        buf->filled = 0;
        buf->dropped = 0;
    }
}

namespace detail {

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace {

/** Pushes one event into the calling thread's ring (shared by spans and
 *  flow points; the only allocation is first-use ring registration). */
void
pushEvent(const char *name, uint64_t start_ns, uint64_t dur_ns,
          uint64_t flow_id, char phase)
{
    TraceBuffer *buf = threadBuffer();
    std::lock_guard<std::mutex> lock(buf->mu);
    TraceEvent &ev = buf->events[buf->head];
    if (buf->filled == buf->events.size())
        ++buf->dropped;
    else
        ++buf->filled;
    ev.name = name;
    ev.start_ns = start_ns;
    ev.dur_ns = dur_ns;
    ev.flow_id = flow_id;
    ev.phase = phase;
    buf->head = (buf->head + 1) % buf->events.size();
}

} // namespace

void
recordSpan(const char *name, uint64_t start_ns, uint64_t end_ns)
{
    pushEvent(name, start_ns, end_ns > start_ns ? end_ns - start_ns : 0, 0,
              'X');
}

void
recordFlow(const char *name, uint64_t id, char phase)
{
    pushEvent(name, nowNs(), 0, id, phase);
}

} // namespace detail

void
traceFlow(const char *name, uint64_t id, char phase)
{
    if (!traceEnabled() || id == 0)
        return;
    detail::recordFlow(name, id, phase);
}

void
writeChromeTrace(std::ostream &os)
{
    // Snapshot every ring under its lock, then serialize lock-free.
    struct Snap
    {
        int tid;
        std::vector<TraceEvent> events;
    };
    std::vector<Snap> snaps;
    {
        TraceRegistry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        snaps.reserve(r.buffers.size());
        for (TraceBuffer *buf : r.buffers) {
            std::lock_guard<std::mutex> buf_lock(buf->mu);
            if (buf->filled == 0)
                continue;
            Snap snap;
            snap.tid = buf->tid;
            snap.events.reserve(buf->filled);
            // Oldest-first: when full, the oldest event sits at head.
            const size_t cap = buf->events.size();
            const size_t start =
                buf->filled == cap ? buf->head : 0;
            for (size_t i = 0; i < buf->filled; ++i)
                snap.events.push_back(buf->events[(start + i) % cap]);
            snaps.push_back(std::move(snap));
        }
    }

    uint64_t t0 = UINT64_MAX;
    for (const Snap &snap : snaps)
        for (const TraceEvent &ev : snap.events)
            t0 = std::min(t0, ev.start_ns);
    if (t0 == UINT64_MAX)
        t0 = 0;

    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (const Snap &snap : snaps) {
        for (const TraceEvent &ev : snap.events) {
            os << (first ? "\n" : ",\n");
            os << "  {\"name\": \"";
            writeEscapedName(os, ev.name);
            os << "\", \"ph\": \"" << ev.phase
               << "\", \"pid\": 1, \"tid\": " << snap.tid << ", \"ts\": ";
            writeMicros(os, ev.start_ns - t0);
            if (ev.phase == 'X') {
                os << ", \"dur\": ";
                writeMicros(os, ev.dur_ns);
            } else {
                // Flow point: the id links the arrow's segments; "bp":"e"
                // binds each point to the slice enclosing its timestamp.
                os << ", \"cat\": \"request\", \"id\": " << ev.flow_id
                   << ", \"bp\": \"e\"";
            }
            os << "}";
            first = false;
        }
    }
    os << "\n]}\n";
}

void
writeTraceSummary(std::ostream &os)
{
    struct Agg
    {
        const char *name;
        uint64_t count = 0;
        uint64_t total_ns = 0;
        uint64_t flows = 0;
    };
    std::vector<Agg> aggs;
    std::vector<std::pair<int, uint64_t>> per_thread; // (tid, events)
    uint64_t dropped = 0;
    {
        TraceRegistry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        for (TraceBuffer *buf : r.buffers) {
            std::lock_guard<std::mutex> buf_lock(buf->mu);
            dropped += buf->dropped;
            if (buf->filled == 0)
                continue;
            per_thread.emplace_back(buf->tid, buf->filled);
            const size_t cap = buf->events.size();
            const size_t start = buf->filled == cap ? buf->head : 0;
            for (size_t i = 0; i < buf->filled; ++i) {
                const TraceEvent &ev = buf->events[(start + i) % cap];
                Agg *agg = nullptr;
                for (Agg &a : aggs) {
                    if (a.name == ev.name ||
                        std::strcmp(a.name, ev.name) == 0) {
                        agg = &a;
                        break;
                    }
                }
                if (agg == nullptr) {
                    aggs.push_back(Agg{ev.name});
                    agg = &aggs.back();
                }
                if (ev.phase == 'X') {
                    ++agg->count;
                    agg->total_ns += ev.dur_ns;
                } else {
                    ++agg->flows;
                }
            }
        }
    }
    std::sort(aggs.begin(), aggs.end(), [](const Agg &a, const Agg &b) {
        return std::strcmp(a.name, b.name) < 0;
    });

    os << "tracez: " << (traceEnabled() ? "recording" : "paused") << ", "
       << aggs.size() << " span names, " << per_thread.size()
       << " threads, " << dropped << " dropped\n\n";
    os << "span                              count   flows   total_us   mean_us\n";
    for (const Agg &a : aggs) {
        std::string name(a.name);
        if (name.size() > 32)
            name.resize(32);
        name.resize(34, ' ');
        const double total_us = static_cast<double>(a.total_ns) / 1e3;
        const double mean_us =
            a.count > 0 ? total_us / static_cast<double>(a.count) : 0.0;
        char line[128];
        std::snprintf(line, sizeof(line), "%7llu %7llu %10.1f %9.2f\n",
                      static_cast<unsigned long long>(a.count),
                      static_cast<unsigned long long>(a.flows), total_us,
                      mean_us);
        os << name << line;
    }
    os << "\nthread  buffered_events\n";
    for (const auto &[tid, events] : per_thread)
        os << "  " << tid << "      " << events << "\n";
}

bool
writeChromeTraceFile(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        MIRAGE_WARN("obs: cannot open trace export path '", path, "'");
        return false;
    }
    writeChromeTrace(os);
    os.flush();
    if (!os) {
        MIRAGE_WARN("obs: failed writing trace to '", path, "'");
        return false;
    }
    return true;
}

} // namespace obs
} // namespace mirage
