#ifndef MIRAGE_OBS_EXPORTER_H
#define MIRAGE_OBS_EXPORTER_H

/**
 * @file
 * Embedded metrics scrape endpoint: a tiny blocking HTTP/1.1 server on a
 * dedicated thread, serving
 *
 *   /metrics  MetricsRegistry in Prometheus text exposition format
 *   /healthz  liveness probe ("ok")
 *   /tracez   human-readable summary of the buffered trace spans
 *
 * One connection at a time, Connection: close, loopback only — this is a
 * scrape target for a sidecar/curl, not a general web server. Off by
 * default: nothing listens unless a MetricsExporter is constructed or
 * MIRAGE_METRICS_PORT is set (startExporterFromEnv, which the bench
 * harness calls). Serving only reads registry aggregates, so it has zero
 * effect on recording hot paths or determinism.
 */

#include <cstdint>
#include <memory>

namespace mirage {
namespace obs {

class MetricsExporter
{
  public:
    /** Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port())
     *  and starts the serving thread. Throws std::runtime_error when the
     *  socket cannot be bound. */
    explicit MetricsExporter(int port);

    /** Stops the serving thread and closes the socket. */
    ~MetricsExporter();

    MetricsExporter(const MetricsExporter &) = delete;
    MetricsExporter &operator=(const MetricsExporter &) = delete;

    /** The bound port (resolves an ephemeral request). */
    int port() const;

    /** HTTP requests answered so far. */
    uint64_t requestsServed() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Writes all `len` bytes of `data` to `fd`, retrying on EINTR and on
 * partial writes (a send() that moved only part of the buffer is progress,
 * not failure — the remainder is retried). Works on sockets (SIGPIPE is
 * suppressed) and plain descriptors/pipes. Returns false only on a real
 * error, e.g. a peer that closed the connection. This is the exporter's
 * response write path, exposed so tests can drive it over a pipe.
 */
bool writeAll(int fd, const void *data, size_t len);

/**
 * Starts the process-wide exporter when MIRAGE_METRICS_PORT names a port,
 * once; later calls (and unset/invalid values) return the first result.
 * The instance is leaked so scrapes work until process exit. Returns
 * nullptr when the variable is unset or the bind failed (a warning is
 * logged; the workload proceeds unobserved rather than dying).
 */
MetricsExporter *startExporterFromEnv();

} // namespace obs
} // namespace mirage

#endif // MIRAGE_OBS_EXPORTER_H
