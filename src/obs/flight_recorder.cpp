#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mirage {
namespace obs {

namespace {

uint64_t
steadyNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Flight-recorder metric handles (magic static, resolved off-signal). */
struct FlightObs
{
    obs::Counter &records;
    obs::Counter &dumps;
    obs::Counter &suppressed;

    static FlightObs &
    get()
    {
        static auto &reg = obs::MetricsRegistry::global();
        static FlightObs o{reg.counter("obs.flight.records"),
                           reg.counter("obs.flight.dumps"),
                           reg.counter("obs.flight.suppressed")};
        return o;
    }
};

} // namespace

struct FlightRecorder::Impl
{
    mutable std::mutex mu;
    std::vector<RequestRecord> ring;
    /// head/filled are atomics so the signal handler can walk the ring
    /// without the mutex (writers update them under `mu`; a concurrently
    /// torn record in a crash dump is acceptable).
    std::atomic<size_t> head{0};
    std::atomic<size_t> filled{0};
    std::atomic<uint64_t> recorded{0};

    std::string dir; ///< Armed output directory; "" = disarmed (mu).
    std::atomic<int> signal_fd{-1};
    std::atomic<uint64_t> trigger_seq{0};
    std::atomic<uint64_t> last_trigger_ns{0};
    std::atomic<uint64_t> min_interval_ns{2'000'000'000};
    bool handlers_installed = false; ///< Guarded by mu.
};

namespace {

/** Flat, pointer-only view of the ring published for the signal handler
 *  (it cannot name the private Impl, and must not touch a mutex). */
struct SignalView
{
    const RequestRecord *ring = nullptr;
    size_t cap = 0;
    const std::atomic<size_t> *head = nullptr;
    const std::atomic<size_t> *filled = nullptr;
    const std::atomic<int> *fd = nullptr;
};

std::atomic<const SignalView *> g_signal_view{nullptr};

size_t
signalSafeU64(char *buf, size_t cap, size_t pos, uint64_t v)
{
    char digits[20];
    size_t n = 0;
    do {
        digits[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v != 0);
    while (n > 0 && pos < cap)
        buf[pos++] = digits[--n];
    return pos;
}

/** Fatal-signal handler: dump the ring through the pre-opened fd using
 *  only async-signal-safe calls, then die by the default disposition
 *  (SA_RESETHAND restored it before this handler ran; re-raising
 *  delivers it on return). */
extern "C" void
flightSignalHandler(int sig)
{
    const SignalView *view = g_signal_view.load(std::memory_order_acquire);
    const int fd =
        view != nullptr ? view->fd->load(std::memory_order_acquire) : -1;
    if (view != nullptr && fd >= 0 && view->cap > 0) {
        char line[kRequestJsonlMax];
        size_t p = 0;
        const char head[] = "{\"signal\":";
        for (const char *s = head; *s != '\0'; ++s)
            line[p++] = *s;
        p = signalSafeU64(line, sizeof(line), p,
                          static_cast<uint64_t>(sig));
        line[p++] = '}';
        line[p++] = '\n';
        (void)!::write(fd, line, p);

        const size_t cap = view->cap;
        const size_t filled =
            std::min(view->filled->load(std::memory_order_relaxed), cap);
        const size_t head_idx =
            view->head->load(std::memory_order_relaxed) % cap;
        const size_t start = filled == cap ? head_idx : 0;
        for (size_t i = 0; i < filled; ++i) {
            const RequestRecord &rec = view->ring[(start + i) % cap];
            const size_t n = formatRequestJsonl(rec, line, sizeof(line));
            (void)!::write(fd, line, n);
        }
        ::fsync(fd);
    }
    ::raise(sig);
}

} // namespace

FlightRecorder::FlightRecorder() : impl_(new Impl())
{
    impl_->ring.resize(kCapacity);
    const char *env = std::getenv("MIRAGE_FLIGHT_DIR");
    if (env != nullptr && env[0] != '\0')
        arm(env);
}

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder *r = new FlightRecorder();
    return *r;
}

void
FlightRecorder::record(const RequestRecord &rec)
{
    if (!enabled())
        return;
    FlightObs::get().records.add(1);
    std::lock_guard<std::mutex> lock(impl_->mu);
    const size_t cap = impl_->ring.size();
    const size_t head = impl_->head.load(std::memory_order_relaxed);
    impl_->ring[head] = rec;
    impl_->head.store((head + 1) % cap, std::memory_order_relaxed);
    const size_t filled = impl_->filled.load(std::memory_order_relaxed);
    if (filled < cap)
        impl_->filled.store(filled + 1, std::memory_order_relaxed);
    impl_->recorded.fetch_add(1, std::memory_order_relaxed);
}

size_t
FlightRecorder::size() const
{
    return impl_->filled.load(std::memory_order_relaxed);
}

uint64_t
FlightRecorder::recorded() const
{
    return impl_->recorded.load(std::memory_order_relaxed);
}

std::vector<RequestRecord>
FlightRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    const size_t cap = impl_->ring.size();
    const size_t filled = impl_->filled.load(std::memory_order_relaxed);
    const size_t head = impl_->head.load(std::memory_order_relaxed);
    const size_t start = filled == cap ? head : 0;
    std::vector<RequestRecord> out;
    out.reserve(filled);
    for (size_t i = 0; i < filled; ++i)
        out.push_back(impl_->ring[(start + i) % cap]);
    return out;
}

void
FlightRecorder::dump(std::ostream &os) const
{
    for (const RequestRecord &rec : snapshot())
        writeRequestJsonl(os, rec);
}

void
FlightRecorder::arm(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->dir = dir;

    // Pre-open the signal dump file: the handler may not call open().
    const int old_fd = impl_->signal_fd.load(std::memory_order_relaxed);
    const std::string sig_path =
        dir + "/flight_signal_" + std::to_string(::getpid()) + ".jsonl";
    const int fd = ::open(sig_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0) {
        MIRAGE_WARN("flight recorder: cannot open '", sig_path,
                    "' for the signal path");
    }
    impl_->signal_fd.store(fd, std::memory_order_release);
    if (old_fd >= 0)
        ::close(old_fd);

    if (!impl_->handlers_installed) {
        auto *view = new SignalView{impl_->ring.data(), impl_->ring.size(),
                                    &impl_->head, &impl_->filled,
                                    &impl_->signal_fd};
        g_signal_view.store(view, std::memory_order_release);
        struct sigaction sa = {};
        sa.sa_handler = flightSignalHandler;
        sigemptyset(&sa.sa_mask);
        // SA_RESETHAND: default disposition is restored before the
        // handler runs, so the re-raise on return terminates normally.
        sa.sa_flags = SA_RESETHAND;
        for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT})
            ::sigaction(sig, &sa, nullptr);
        impl_->handlers_installed = true;
    }
}

void
FlightRecorder::disarm()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->dir.clear();
    const int fd = impl_->signal_fd.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0)
        ::close(fd);
}

bool
FlightRecorder::armed() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return !impl_->dir.empty();
}

std::string
FlightRecorder::armedDir() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->dir;
}

std::string
FlightRecorder::trigger(const char *reason)
{
    std::string dir;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        dir = impl_->dir;
    }
    if (dir.empty() || size() == 0) {
        FlightObs::get().suppressed.add(1);
        return "";
    }

    // Rate limit: one dump per interval, first caller wins.
    const uint64_t now = steadyNs();
    uint64_t last = impl_->last_trigger_ns.load(std::memory_order_relaxed);
    const uint64_t min_gap =
        impl_->min_interval_ns.load(std::memory_order_relaxed);
    if (last != 0 && now - last < min_gap) {
        FlightObs::get().suppressed.add(1);
        return "";
    }
    if (!impl_->last_trigger_ns.compare_exchange_strong(
            last, now, std::memory_order_relaxed)) {
        FlightObs::get().suppressed.add(1);
        return "";
    }

    const uint64_t seq =
        impl_->trigger_seq.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::string base =
        dir + "/flight_" + reason + "_" + std::to_string(seq);
    const std::string jsonl_path = base + ".jsonl";
    std::ofstream os(jsonl_path);
    if (!os) {
        MIRAGE_WARN("flight recorder: cannot write '", jsonl_path, "'");
        return "";
    }
    dump(os);
    os.flush();
    // Span snapshot alongside the records (empty-but-valid when tracing
    // is off; Perfetto still loads it).
    (void)writeChromeTraceFile(base + ".trace.json");
    FlightObs::get().dumps.add(1);
    MIRAGE_WARN("flight recorder: dumped ", size(), " records to '",
                jsonl_path, "' (reason: ", reason, ")");
    return jsonl_path;
}

uint64_t
FlightRecorder::triggerCount() const
{
    return impl_->trigger_seq.load(std::memory_order_relaxed);
}

void
FlightRecorder::setMinTriggerInterval(double seconds)
{
    impl_->min_interval_ns.store(
        seconds > 0.0 ? static_cast<uint64_t>(seconds * 1e9) : 0,
        std::memory_order_relaxed);
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->head.store(0, std::memory_order_relaxed);
    impl_->filled.store(0, std::memory_order_relaxed);
}

} // namespace obs
} // namespace mirage
