#include "obs/context.h"

#include <atomic>
#include <cstring>
#include <ostream>

namespace mirage {
namespace obs {

namespace {

std::atomic<uint64_t> g_next_request_id{1};

thread_local uint64_t t_current_request_id = 0;

/** Appends `s` to buf[pos..cap); returns the new pos (clamped at cap). */
size_t
append(char *buf, size_t cap, size_t pos, const char *s)
{
    while (*s != '\0' && pos < cap)
        buf[pos++] = *s++;
    return pos;
}

/** Appends `v` in decimal. Async-signal-safe (no snprintf/locale). */
size_t
appendU64(char *buf, size_t cap, size_t pos, uint64_t v)
{
    char digits[20];
    size_t n = 0;
    do {
        digits[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v != 0);
    while (n > 0 && pos < cap)
        buf[pos++] = digits[--n];
    return pos;
}

size_t
appendI64(char *buf, size_t cap, size_t pos, int64_t v)
{
    if (v < 0) {
        if (pos < cap)
            buf[pos++] = '-';
        return appendU64(buf, cap, pos, static_cast<uint64_t>(-(v + 1)) + 1);
    }
    return appendU64(buf, cap, pos, static_cast<uint64_t>(v));
}

size_t
appendBool(char *buf, size_t cap, size_t pos, bool v)
{
    return append(buf, cap, pos, v ? "true" : "false");
}

} // namespace

uint64_t
nextRequestId()
{
    return g_next_request_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
currentRequestId()
{
    return t_current_request_id;
}

void
setCurrentRequestId(uint64_t id)
{
    t_current_request_id = id;
}

const char *
requestClassName(uint8_t cls)
{
    switch (cls) {
      case kClassInteractive: return "interactive";
      case kClassBatch: return "batch";
      case kClassTrain: return "train";
    }
    return "unknown";
}

size_t
formatRequestJsonl(const RequestRecord &rec, char *buf, size_t cap)
{
    if (cap > kRequestJsonlMax)
        cap = kRequestJsonlMax;
    size_t p = 0;
    p = append(buf, cap, p, "{\"id\":");
    p = appendU64(buf, cap, p, rec.id);
    p = append(buf, cap, p, ",\"batch\":");
    p = appendU64(buf, cap, p, rec.batch_seq);
    p = append(buf, cap, p, ",\"class\":\"");
    p = append(buf, cap, p, requestClassName(rec.cls));
    p = append(buf, cap, p, "\",\"tile\":");
    p = appendI64(buf, cap, p, rec.tile);
    p = append(buf, cap, p, ",\"batch_size\":");
    p = appendI64(buf, cap, p, rec.batch_size);
    p = append(buf, cap, p, ",\"cache_hit\":");
    p = appendBool(buf, cap, p, rec.cache_hit);
    p = append(buf, cap, p, ",\"deadline_met\":");
    p = appendBool(buf, cap, p, rec.deadline_met);
    p = append(buf, cap, p, ",\"shed\":");
    p = appendBool(buf, cap, p, rec.shed);
    p = append(buf, cap, p, ",\"queue_ns\":");
    p = appendU64(buf, cap, p, rec.queue_ns);
    p = append(buf, cap, p, ",\"execute_ns\":");
    p = appendU64(buf, cap, p, rec.execute_ns);
    p = append(buf, cap, p, ",\"reply_ns\":");
    p = appendU64(buf, cap, p, rec.reply_ns);
    p = append(buf, cap, p, ",\"total_ns\":");
    p = appendU64(buf, cap, p, rec.total_ns);
    p = append(buf, cap, p, ",\"modeled_ns\":");
    p = appendU64(buf, cap, p, rec.modeled_ns);
    p = append(buf, cap, p, ",\"modeled_nj\":");
    p = appendU64(buf, cap, p, rec.modeled_nj);
    p = append(buf, cap, p, "}\n");
    return p;
}

void
writeRequestJsonl(std::ostream &os, const RequestRecord &rec)
{
    char buf[kRequestJsonlMax];
    const size_t n = formatRequestJsonl(rec, buf, sizeof(buf));
    os.write(buf, static_cast<std::streamsize>(n));
}

} // namespace obs
} // namespace mirage
