#ifndef MIRAGE_OBS_METRICS_H
#define MIRAGE_OBS_METRICS_H

/**
 * @file
 * Process-wide metrics registry: named counters, gauges and log2-bucketed
 * latency histograms shared by the runtime, serving and training layers.
 *
 * Design contract (see tests/test_alloc_guard.cpp and bench/obs_overhead.cpp):
 *
 *  - Handles are pre-registered. `registry.counter("x")` does one map lookup
 *    under a mutex and returns a reference that stays valid for the process
 *    lifetime; hot paths hold the reference (typically via a function-local
 *    static) and never touch the map again.
 *  - Recording is allocation-free and lock-free: one relaxed load of the
 *    enable flag plus one relaxed fetch_add on a per-thread shard. Shards
 *    are cache-line padded so concurrent recorders do not false-share.
 *  - Aggregation happens on read (value()/snapshot()/renderText). Readers
 *    sum the shards with relaxed loads; concurrent recording is safe and
 *    merely makes the read a point-in-time approximation.
 *  - Recording never reads the wall clock and never feeds numeric state, so
 *    instrumentation cannot perturb the determinism contracts.
 *
 * Gating: `obs::enabled()` is initialized from MIRAGE_OBS (default on;
 * "0"/"false"/"off" disable) and can be flipped at runtime with
 * setEnabled(). When off, record calls early-out after a single relaxed
 * atomic load — a few ns, asserted in tests/test_obs.cpp.
 *
 * Units: histograms and *_ns counters store integer nanoseconds; *_nj
 * counters store integer nanojoules. toNanos() converts the double
 * seconds/joules the perf/energy models produce.
 */

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace mirage {
namespace obs {

/** True when metric recording is on (MIRAGE_OBS, default on). */
bool enabled();

/** Flips metric recording at runtime (overrides MIRAGE_OBS). */
void setEnabled(bool on);

/** Converts seconds to integer nanoseconds (or joules to nanojoules),
 *  clamping negatives to zero. */
inline uint64_t
toNanos(double seconds)
{
    if (!(seconds > 0.0))
        return 0;
    return static_cast<uint64_t>(seconds * 1e9 + 0.5);
}

namespace detail {

/// Shard count for counters/histograms. A power of two; threads hash to a
/// shard by registration order, so up to kShards recorders never contend.
constexpr int kShards = 16;

/// Returns this thread's shard index (assigned round-robin on first use).
size_t threadShard();

struct alignas(64) PaddedU64
{
    std::atomic<uint64_t> v{0};
};

} // namespace detail

/** Monotonic counter. add() is allocation-free and lock-free. */
class Counter
{
  public:
    explicit Counter(std::string name) : name_(std::move(name)) {}

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void
    add(uint64_t delta = 1)
    {
        if (!enabled())
            return;
        shards_[detail::threadShard()].v.fetch_add(delta,
                                                   std::memory_order_relaxed);
    }

    /** Aggregated total (relaxed sum over the shards). */
    uint64_t value() const;

    /** Zeroes every shard (tests and bench warm-up). */
    void reset();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    detail::PaddedU64 shards_[detail::kShards];
};

/** Last-write-wins gauge (signed; e.g. queue depth, retired pools). */
class Gauge
{
  public:
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void
    set(int64_t v)
    {
        if (!enabled())
            return;
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(int64_t delta)
    {
        if (!enabled())
            return;
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t value() const { return value_.load(std::memory_order_relaxed); }

    void reset() { value_.store(0, std::memory_order_relaxed); }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::atomic<int64_t> value_{0};
};

/** Point-in-time aggregate of a Histogram. Quantiles are bucket midpoints
 *  of an HDR-style log2 layout with 8 sub-buckets per octave, so the
 *  relative error is bounded by half a bucket width: <= 1/16 (6.25%). */
struct HistogramSnapshot
{
    uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0; ///< low edge of the lowest non-empty bucket
    double max = 0.0; ///< midpoint of the highest non-empty bucket
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * Fixed-bucket latency histogram over uint64 values (nanoseconds by
 * convention). Buckets are exact below 16 and log2 with 8 linear
 * sub-buckets per octave above, covering the full uint64 range in 496
 * buckets; record() is one relaxed fetch_add on a per-thread shard row.
 */
class Histogram
{
  public:
    /// Sub-bucket bits per octave: 8 linear subdivisions.
    static constexpr int kSubBits = 3;
    static constexpr int kSub = 1 << kSubBits;
    /// Highest index is ((63 - kSubBits + 1) << kSubBits) | (kSub - 1).
    static constexpr int kBuckets = ((63 - kSubBits + 1) << kSubBits) + kSub;

    explicit Histogram(std::string name) : name_(std::move(name)) {}

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void
    record(uint64_t value)
    {
        if (!enabled())
            return;
        Shard &s = shards_[detail::threadShard()];
        s.buckets[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
        s.sum.fetch_add(value, std::memory_order_relaxed);
    }

    /** Records a duration/energy given in seconds/joules as integer nanos. */
    void recordNanosOf(double seconds) { record(toNanos(seconds)); }

    HistogramSnapshot snapshot() const;

    /** Total recorded samples (cheaper than a full snapshot). */
    uint64_t count() const;

    void reset();

    const std::string &name() const { return name_; }

    /** Bucket index for a value; exposed for tests. */
    static int bucketIndex(uint64_t value);

    /** [low, high) edges of bucket `index`; exposed for tests/exposition. */
    static void bucketBounds(int index, double *low, double *high);

    /** Fills `out[kBuckets]` with the aggregated per-bucket counts. */
    void aggregate(uint64_t *out) const;

  private:
    struct alignas(64) Shard
    {
        std::atomic<uint64_t> buckets[kBuckets] = {};
        std::atomic<uint64_t> sum{0};
    };

    std::string name_;
    Shard shards_[detail::kShards];
};

/**
 * Process-wide registry. counter()/gauge()/histogram() register on first
 * use (mutex + map insert) and return stable references; re-registering a
 * name returns the same handle. Exposition walks the registry in name
 * order.
 */
class MetricsRegistry
{
  public:
    /** The process-wide instance (leaked singleton: safe to record from
     *  static destructors and detached threads). */
    static MetricsRegistry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Looks a metric up without creating it; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /** Prometheus-style text exposition: dotted names are sanitized to
     *  underscores and prefixed `mirage_`; histograms emit cumulative
     *  `_bucket{le="..."}` lines for non-empty buckets plus `_sum` and
     *  `_count`. */
    void renderText(std::ostream &os) const;

    /** JSON dump: {"counters": {...}, "gauges": {...},
     *  "histograms": {name: {count, sum, mean, min, max, p50, p95, p99}}}.
     *  Consumed by bench --metrics and bench/check_regression.py. */
    void renderJson(std::ostream &os) const;

    /** renderJson to `path`; returns false (and warns) on I/O failure. */
    bool writeJsonFile(const std::string &path) const;

    /** Zeroes every registered metric (handles stay valid). Tests only. */
    void reset();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  private:
    MetricsRegistry();
    ~MetricsRegistry();

    struct Impl;
    Impl *impl_;
};

} // namespace obs
} // namespace mirage

#endif // MIRAGE_OBS_METRICS_H
