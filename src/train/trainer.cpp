#include "train/trainer.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <fstream>
#include <functional>
#include <stdexcept>

#include "common/logging.h"
#include "fault/injection.h"
#include "nn/loss.h"
#include "obs/context.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "train/grad_utils.h"

namespace mirage {
namespace train {

namespace {

/** Pre-registered trainer metric handles (magic static). Everything
 *  recorded on the step path is a relaxed atomic op: the steady-state
 *  training step stays zero-alloc (tests/test_alloc_guard.cpp) and the
 *  wall-clock sample reused for train.step_ns is the one trainStep
 *  already takes for TrainReport. */
struct TrainObs
{
    obs::Counter &steps;
    obs::Counter &samples;
    obs::Counter &clipped_steps;
    obs::Counter &checkpoints;
    obs::Counter &publishes;
    obs::Counter &modeled_ns;
    obs::Counter &modeled_nj;
    obs::Counter &replica_failures;
    obs::Counter &elastic_resumes;
    obs::Histogram &step_ns;

    static TrainObs &
    get()
    {
        static auto &reg = obs::MetricsRegistry::global();
        static TrainObs o{reg.counter("train.steps"),
                          reg.counter("train.samples"),
                          reg.counter("train.clipped_steps"),
                          reg.counter("train.checkpoints"),
                          reg.counter("train.publishes"),
                          reg.counter("train.modeled_ns"),
                          reg.counter("train.modeled_nj"),
                          reg.counter("train.replica_failures"),
                          reg.counter("train.elastic_resumes"),
                          reg.histogram("train.step_ns")};
        return o;
    }
};

/** Thrown out of trainStep when replicas die mid-step. The step aborts
 *  before any reduction or optimizer mutation, so every surviving replica
 *  still holds the last completed step's parameters and the step can be
 *  replayed at the surviving replica count. */
struct ReplicaFailure
{
    std::vector<int> replicas; ///< Indices of the replicas that died.
};

/** "train.replica_fail" injection point (see fault/injection.h):
 *  evaluated once per (replica, accumulation round); a fire kills that
 *  replica for the rest of the run. */
fault::FaultPoint &
replicaFailPoint()
{
    static fault::FaultPoint p("train.replica_fail");
    return p;
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path, std::ios::binary).good();
}

// Metadata keys of the checkpoint resume section (format v2).
constexpr const char *kMetaStep = "train/step";
constexpr const char *kMetaEpoch = "train/epoch";
constexpr const char *kMetaCursor = "train/cursor";
constexpr const char *kMetaDataSeed = "train/data_seed";
constexpr const char *kMetaDataSize = "train/data_size";
constexpr const char *kMetaMicroBatch = "train/micro_batch";
constexpr const char *kMetaShards = "train/shards_per_step";
constexpr const char *kMetaAccum = "train/accum_rounds";
constexpr const char *kMetaBaseLrBits = "train/base_lr_bits";
constexpr const char *kMetaClipNormBits = "train/clip_norm_bits";
constexpr const char *kMetaExecMode = "train/exec_mode";
constexpr const char *kMetaSchedPolicy = "train/sched_policy";
constexpr const char *kMetaSchedWarmup = "train/sched_warmup";
constexpr const char *kMetaSchedDecayEvery = "train/sched_decay_every";
constexpr const char *kMetaSchedGammaBits = "train/sched_gamma_bits";
constexpr const char *kMetaSchedTotalSteps = "train/sched_total_steps";
constexpr const char *kMetaSchedMinScaleBits = "train/sched_min_scale_bits";

// Stream ids of the trainer's Rng::split children (arbitrary, fixed).
constexpr uint64_t kDataStream = 0xda7a;
constexpr uint64_t kInitStream = 0x1417;

} // namespace

void
TrainerConfig::validate() const
{
    if (replicas < 1)
        throw std::invalid_argument("TrainerConfig: replicas must be >= 1");
    if (micro_batch < 1)
        throw std::invalid_argument("TrainerConfig: micro_batch must be >= 1");
    if (shards_per_step < 1)
        throw std::invalid_argument(
            "TrainerConfig: shards_per_step must be >= 1");
    if (accum_rounds < 1)
        throw std::invalid_argument(
            "TrainerConfig: accum_rounds must be >= 1");
    if (clip_norm < 0.0)
        throw std::invalid_argument("TrainerConfig: clip_norm must be >= 0");
    if (checkpoint_every_steps < 0)
        throw std::invalid_argument(
            "TrainerConfig: checkpoint_every_steps must be >= 0");
    if (publish_to != nullptr && publish_name.empty())
        throw std::invalid_argument(
            "TrainerConfig: publish_to needs a publish_name");
    schedule.validate();
}

/** One model replica: a full network on its own accelerator. */
struct Trainer::Replica
{
    std::unique_ptr<core::MirageAccelerator> accel;
    std::unique_ptr<nn::Sequential> net;
    std::vector<nn::Param *> params;
};

Trainer::Trainer(serve::ModelFactory factory,
                 std::unique_ptr<nn::Optimizer> opt, TrainerConfig cfg)
    : cfg_(std::move(cfg)), factory_(std::move(factory)), opt_(std::move(opt))
{
    cfg_.validate();
    if (!factory_)
        throw std::invalid_argument("Trainer: model factory is empty");
    if (opt_ == nullptr)
        throw std::invalid_argument("Trainer: optimizer is null");
    base_lr_ = opt_->lr();
    data_seed_ = Rng::stream(cfg_.seed, kDataStream).seed();
    const uint64_t init_seed = Rng::stream(cfg_.seed, kInitStream).seed();

    replicas_.reserve(static_cast<size_t>(cfg_.replicas));
    for (int r = 0; r < cfg_.replicas; ++r) {
        auto rep = std::make_unique<Replica>();
        rep->accel = std::make_unique<core::MirageAccelerator>(cfg_.accel);
        // Every replica draws from a fresh stream at the SAME seed: the
        // replicas must start bit-identical, or shard placement would
        // leak into the result.
        Rng init(init_seed);
        rep->net = factory_(rep->accel->backend(cfg_.mode), init);
        if (rep->net == nullptr)
            throw std::invalid_argument("Trainer: factory returned null");
        rep->params = rep->net->params();
        replicas_.push_back(std::move(rep));
    }

    flat_size_ = 0;
    for (const nn::Param *p : replicas_[0]->params)
        flat_size_ += p->value.size();

    shard_grads_.assign(
        static_cast<size_t>(cfg_.shards_per_step),
        std::vector<float>(static_cast<size_t>(flat_size_)));
    shard_loss_.assign(static_cast<size_t>(cfg_.shards_per_step), 0.0f);
    shard_correct_.assign(static_cast<size_t>(cfg_.shards_per_step), 0);
    step_grad_.assign(static_cast<size_t>(flat_size_), 0.0f);
    shard_batch_.resize(static_cast<size_t>(cfg_.replicas));
    replica_failed_.assign(static_cast<size_t>(cfg_.replicas), 0);
}

Trainer::~Trainer() = default;

nn::Sequential &
Trainer::net()
{
    return *replicas_[0]->net;
}

std::string
Trainer::modelName() const
{
    if (!cfg_.publish_name.empty())
        return cfg_.publish_name;
    if (!cfg_.shape.name.empty())
        return cfg_.shape.name;
    return "trainer-model";
}

double
Trainer::scheduledLr() const
{
    return static_cast<double>(base_lr_) * cfg_.schedule.scale(step_);
}

void
Trainer::broadcastFromReplica0()
{
    const std::vector<nn::Param *> &master = replicas_[0]->params;
    for (size_t r = 1; r < replicas_.size(); ++r) {
        const std::vector<nn::Param *> &dst = replicas_[r]->params;
        MIRAGE_ASSERT(dst.size() == master.size(),
                      "replica parameter lists diverged");
        for (size_t i = 0; i < master.size(); ++i)
            dst[i]->value.vec() = master[i]->value.vec();
    }
}

void
Trainer::trainStep(const nn::BatchIterator &it, TrainReport &report,
                   double &epoch_loss, int64_t &epoch_correct)
{
    MIRAGE_SPAN("train.step");
    // Step-scoped causal context: one id per optimizer step, flowing from
    // this slice through the replica shards to the step's end.
    const uint64_t step_ctx = obs::nextRequestId();
    obs::RequestScope ctx_scope(step_ctx);
    obs::traceFlow("train.request", step_ctx, 's');
    const int S = cfg_.shards_per_step;
    const int A = cfg_.accum_rounds;
    const int R = cfg_.replicas;
    const int64_t n = flat_size_;
    const auto compute_t0 = std::chrono::steady_clock::now();

    std::fill(step_grad_.begin(), step_grad_.end(), 0.0f);
    std::fill(replica_failed_.begin(), replica_failed_.end(),
              static_cast<uint8_t>(0));
    double step_loss = 0.0;
    int64_t step_correct = 0;

    for (int a = 0; a < A; ++a) {
        const int64_t round_base = cursor_ + static_cast<int64_t>(a) * S;
        // Replica r executes shard q of the round when q % R == r, each on
        // its own model copy; writes go to disjoint shard slots, and the
        // parallelFor join orders them before the reduction below.
        runtime::parallelFor(R, 1, [&](int64_t begin, int64_t end) {
            for (int64_t r = begin; r < end; ++r) {
                MIRAGE_SPAN("train.shard");
                obs::RequestScope shard_ctx(step_ctx);
                obs::traceFlow("train.request", step_ctx, 't');
                // Injected replica death: flag it and run no shards; the
                // step aborts after the round, before any state mutation.
                if (replicaFailPoint().shouldFire()) {
                    replica_failed_[static_cast<size_t>(r)] = 1;
                    continue;
                }
                Replica &rep = *replicas_[r];
                nn::Dataset &shard = shard_batch_[static_cast<size_t>(r)];
                for (int q = static_cast<int>(r); q < S; q += R) {
                    it.batchInto(round_base + q, shard);
                    nn::Optimizer::zeroGrad(rep.params);
                    const nn::Tensor logits =
                        rep.net->forward(shard.inputs, /*training=*/true);
                    const nn::LossResult loss =
                        nn::softmaxCrossEntropy(logits, shard.labels);
                    rep.net->backward(loss.grad);

                    float *dst = shard_grads_[static_cast<size_t>(q)].data();
                    int64_t off = 0;
                    for (const nn::Param *p : rep.params) {
                        const float *src = p->grad.data();
                        std::copy(src, src + p->grad.size(), dst + off);
                        off += p->grad.size();
                    }
                    shard_loss_[static_cast<size_t>(q)] = loss.loss;
                    // Inline argmax (argmaxRows semantics, ties low): no
                    // per-shard prediction vector on the hot path.
                    const int classes =
                        static_cast<int>(logits.shape().back());
                    int correct = 0;
                    for (size_t i = 0; i < shard.labels.size(); ++i) {
                        const int64_t base =
                            static_cast<int64_t>(i) * classes;
                        int best = 0;
                        for (int c = 1; c < classes; ++c)
                            if (logits[base + c] > logits[base + best])
                                best = c;
                        correct += (best == shard.labels[i]);
                    }
                    shard_correct_[static_cast<size_t>(q)] = correct;
                }
            }
        });

        // A dead replica leaves its shard slots unwritten: abort the step
        // before the reduction so nothing downstream observes them. The
        // handler replays the whole step at the surviving replica count.
        if (std::find(replica_failed_.begin(), replica_failed_.end(),
                      static_cast<uint8_t>(1)) != replica_failed_.end()) {
            ReplicaFailure failure;
            for (int r = 0; r < R; ++r)
                if (replica_failed_[static_cast<size_t>(r)])
                    failure.replicas.push_back(r);
            throw failure;
        }

        // Fixed binary-tree reduction over the shard index — the shape
        // depends only on S, never on the replica count, so the FP32
        // accumulation order (and hence every rounded bit) matches the
        // 1-replica run.
        MIRAGE_SPAN("train.reduce");
        for (int stride = 1; stride < S; stride *= 2) {
            for (int i = 0; i + stride < S; i += 2 * stride) {
                float *acc = shard_grads_[static_cast<size_t>(i)].data();
                const float *src =
                    shard_grads_[static_cast<size_t>(i + stride)].data();
                for (int64_t e = 0; e < n; ++e)
                    acc[e] += src[e];
            }
        }
        const float *round_sum = shard_grads_[0].data();
        for (int64_t e = 0; e < n; ++e)
            step_grad_[static_cast<size_t>(e)] += round_sum[e];
        for (int q = 0; q < S; ++q) {
            step_loss += shard_loss_[static_cast<size_t>(q)];
            step_correct += shard_correct_[static_cast<size_t>(q)];
        }
    }

    // Each shard gradient is a mean over micro_batch rows; the global
    // mean over the effective batch is the shard sum / (S * A).
    const float inv = 1.0f / static_cast<float>(S * A);
    for (float &g : step_grad_)
        g *= inv;

    double lr = 0.0;
    {
        MIRAGE_SPAN("train.optimizer");
        assertFiniteGrads(step_grad_, "the optimizer-step boundary");
        double norm;
        if (cfg_.clip_norm > 0.0) {
            norm = clipGradNorm(std::span<float>(step_grad_), cfg_.clip_norm);
            if (norm > cfg_.clip_norm) {
                ++report.clipped_steps;
                TrainObs::get().clipped_steps.add(1);
            }
        } else {
            norm = globalGradNorm(std::span<const float>(step_grad_));
        }
        report.max_grad_norm = std::max(report.max_grad_norm, norm);

        // Scatter the reduced gradient into replica 0 and step the master.
        int64_t off = 0;
        for (nn::Param *p : replicas_[0]->params) {
            std::copy(step_grad_.data() + off,
                      step_grad_.data() + off + p->grad.size(),
                      p->grad.data());
            off += p->grad.size();
        }
        lr = scheduledLr();
        opt_->setLr(static_cast<float>(lr));
        opt_->step(replicas_[0]->params);
        broadcastFromReplica0();
    }

    ++step_;
    cursor_ += static_cast<int64_t>(S) * A;
    // Compute time only: the checkpoint/publish I/O below is excluded so
    // TrainReport::samples_per_s reports sustained training throughput.
    const double step_dt = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - compute_t0)
                               .count();
    step_wall_s_ += step_dt;
    TrainObs::get().steps.add(1);
    TrainObs::get().samples.add(static_cast<uint64_t>(cfg_.effectiveBatch()));
    TrainObs::get().step_ns.recordNanosOf(step_dt);
    TrainObs::get().modeled_ns.add(obs::toNanos(report.modeled_step_time_s));
    TrainObs::get().modeled_nj.add(obs::toNanos(report.modeled_step_energy_j));
    // Flow terminus plus a per-step flight-ring record (POD copy into a
    // pre-sized ring — nothing here allocates).
    obs::traceFlow("train.request", step_ctx, 'f');
    obs::RequestRecord step_rec;
    step_rec.id = step_ctx;
    step_rec.batch_seq = static_cast<uint64_t>(step_);
    step_rec.cls = obs::kClassTrain;
    step_rec.deadline_met = true;
    step_rec.batch_size = static_cast<int32_t>(cfg_.effectiveBatch());
    step_rec.execute_ns = obs::toNanos(step_dt);
    step_rec.total_ns = step_rec.execute_ns;
    step_rec.modeled_ns = obs::toNanos(report.modeled_step_time_s);
    step_rec.modeled_nj = obs::toNanos(report.modeled_step_energy_j);
    obs::FlightRecorder::global().record(step_rec);
    const float mean_loss =
        static_cast<float>(step_loss / static_cast<double>(S * A));
    report.step_loss.push_back(mean_loss);
    report.step_lr.push_back(static_cast<float>(lr));
    epoch_loss += step_loss;
    epoch_correct += step_correct;

    if (cfg_.checkpoint_every_steps > 0 &&
        step_ % cfg_.checkpoint_every_steps == 0) {
        if (!cfg_.checkpoint_path.empty()) {
            MIRAGE_SPAN("train.checkpoint");
            saveCheckpoint(cfg_.checkpoint_path);
            ++report.checkpoints_written;
            TrainObs::get().checkpoints.add(1);
        }
        if (cfg_.publish_to != nullptr) {
            MIRAGE_SPAN("train.publish");
            report.last_published_version = publishNow();
            TrainObs::get().publishes.add(1);
        }
    }
}

TrainReport
Trainer::run(const nn::Dataset &train, const nn::Dataset *test,
             int target_epochs, int64_t max_steps)
{
    // Continuing a run (including one restored from a checkpoint) on a
    // different dataset would replay different batches and silently break
    // the bit-exact-resume contract; the row count is the cheap identity
    // check (the seed check in loadCheckpoint covers the shuffle stream).
    if ((step_ > 0 || epoch_ > 0 || cursor_ > 0) && data_size_ != 0 &&
        data_size_ != train.size())
        throw serve::CheckpointError(
            "Trainer::run: resuming with a dataset of " +
            std::to_string(train.size()) + " rows, but training so far "
            "used " + std::to_string(data_size_) +
            "; the continued run would not be bit-identical");
    data_size_ = train.size();

    const int64_t shards_per_opt_step =
        static_cast<int64_t>(cfg_.shards_per_step) * cfg_.accum_rounds;
    nn::BatchIterator it(train, cfg_.micro_batch, data_seed_,
                         /*shuffle=*/true, /*drop_last=*/true);
    const int64_t batches_per_epoch = it.batchesPerEpoch();
    if (batches_per_epoch < shards_per_opt_step)
        throw std::invalid_argument(
            "Trainer::run: dataset of " + std::to_string(train.size()) +
            " rows cannot fill one optimizer step of " +
            std::to_string(cfg_.effectiveBatch()) + " samples");
    // Whole optimizer steps only; the epoch's ragged tail is skipped.
    const int64_t usable =
        (batches_per_epoch / shards_per_opt_step) * shards_per_opt_step;

    TrainReport report;
    const int64_t start_step = step_;
    if (!cfg_.shape.layers.empty()) {
        const core::PerformanceReport perf =
            replicas_[0]->accel->estimateTraining(cfg_.shape,
                                                  cfg_.effectiveBatch());
        report.modeled_step_time_s = perf.time_s;
        report.modeled_step_energy_j = perf.energy_j;
    }

    const auto t0 = std::chrono::steady_clock::now();
    step_wall_s_ = 0.0;
    // The epoch loop restarts after a replica failure: the handler elides
    // the dead replicas (reloading the last on-disk checkpoint when one
    // exists) and training continues at the surviving replica count.
    for (bool restart = true; restart;) {
        restart = false;
        try {
            while (epoch_ < target_epochs) {
                it.setEpoch(epoch_);
                double epoch_loss = 0.0;
                int64_t epoch_correct = 0;
                const int64_t epoch_start_cursor = cursor_;
                while (cursor_ + shards_per_opt_step <= usable &&
                       (max_steps == 0 || step_ - start_step < max_steps))
                    trainStep(it, report, epoch_loss, epoch_correct);
                const bool stopped_early =
                    max_steps > 0 && step_ - start_step >= max_steps &&
                    cursor_ + shards_per_opt_step <= usable;

                if (stopped_early)
                    break; // mid-epoch: epoch_/cursor_ stay for the ckpt

                const int64_t shards_done = cursor_ - epoch_start_cursor;
                if (shards_done == 0) {
                    // Only reachable by resuming a checkpoint written at an
                    // exact epoch boundary: the epoch was already complete,
                    // so roll over without recording a spurious all-zero
                    // metrics entry.
                    ++epoch_;
                    cursor_ = 0;
                    continue;
                }
                const int64_t samples_done = shards_done * cfg_.micro_batch;
                report.epoch_loss.push_back(static_cast<float>(
                    epoch_loss / static_cast<double>(shards_done)));
                report.epoch_train_acc.push_back(
                    static_cast<float>(epoch_correct) /
                    static_cast<float>(samples_done));
                if (test != nullptr)
                    report.epoch_test_acc.push_back(
                        nn::evaluateAccuracy(net(), *test));
                if (cfg_.verbose) {
                    MIRAGE_INFORM("train epoch ", epoch_, ": loss=",
                                  report.epoch_loss.back(), " train_acc=",
                                  report.epoch_train_acc.back(),
                                  " step=", step_);
                }
                ++epoch_;
                cursor_ = 0;
            }
        } catch (const ReplicaFailure &failure) {
            handleReplicaFailure(failure.replicas, report);
            restart = true;
        }
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    report.steps_run = step_ - start_step;
    report.final_step = step_;
    report.samples_seen = report.steps_run * cfg_.effectiveBatch();
    report.wall_s = wall;
    report.samples_per_s =
        step_wall_s_ > 0.0
            ? static_cast<double>(report.samples_seen) / step_wall_s_
            : 0.0;
    report.modeled_time_s =
        report.modeled_step_time_s * static_cast<double>(report.steps_run);
    report.modeled_energy_j =
        report.modeled_step_energy_j * static_cast<double>(report.steps_run);
    if (test != nullptr)
        report.final_test_accuracy = nn::evaluateAccuracy(net(), *test);
    return report;
}

void
Trainer::handleReplicaFailure(const std::vector<int> &dead,
                              TrainReport &report)
{
    if (dead.size() >= replicas_.size())
        throw std::runtime_error(
            "Trainer: every replica failed mid-step; nothing left to "
            "continue on");

    // Elide the dead replicas, highest index first so the remaining
    // indices stay valid. The aborted step never reached the optimizer, so
    // every survivor still holds the last completed step's parameters —
    // whichever survivor becomes replica 0 is a bit-identical master.
    std::vector<int> order(dead);
    std::sort(order.begin(), order.end(), std::greater<int>());
    for (int r : order) {
        MIRAGE_WARN("trainer: replica ", r, " failed mid-step at step ",
                    step_, "; eliding it (", replicas_.size() - 1,
                    " replicas remain)");
        replicas_.erase(replicas_.begin() + r);
    }
    cfg_.replicas = static_cast<int>(replicas_.size());
    shard_batch_.resize(replicas_.size());
    replica_failed_.assign(replicas_.size(), 0);
    report.replica_failures += static_cast<int>(dead.size());
    TrainObs::get().replica_failures.add(dead.size());

    // Elastic resume: reload the last on-disk checkpoint when one exists.
    // Shard contents, the reduction tree, and per-shard numerics never
    // depend on the replica count, so replaying from the checkpoint (or,
    // without one, simply retrying the aborted step in memory) is
    // bit-identical to an uninterrupted run at the surviving count.
    if (!cfg_.checkpoint_path.empty() && fileExists(cfg_.checkpoint_path)) {
        MIRAGE_SPAN("train.elastic_resume");
        loadCheckpointFile(cfg_.checkpoint_path);
        ++report.elastic_resumes;
        TrainObs::get().elastic_resumes.add(1);
        MIRAGE_WARN("trainer: elastic resume from '", cfg_.checkpoint_path,
                    "' at step ", step_, " with ", cfg_.replicas,
                    " replicas");
    }
    for (size_t i = 0; i < dead.size(); ++i)
        fault::recovered("train.replica_fail");
}

serve::Checkpoint
Trainer::makeCheckpoint()
{
    serve::Checkpoint ckpt =
        serve::snapshot(*replicas_[0]->net, modelName(), opt_.get());
    ckpt.metadata[kMetaStep] = step_;
    ckpt.metadata[kMetaEpoch] = epoch_;
    ckpt.metadata[kMetaCursor] = cursor_;
    ckpt.metadata[kMetaDataSeed] = std::bit_cast<int64_t>(data_seed_);
    ckpt.metadata[kMetaDataSize] = data_size_;
    ckpt.metadata[kMetaMicroBatch] = cfg_.micro_batch;
    ckpt.metadata[kMetaShards] = cfg_.shards_per_step;
    ckpt.metadata[kMetaAccum] = cfg_.accum_rounds;
    ckpt.metadata[kMetaBaseLrBits] =
        std::bit_cast<int64_t>(static_cast<double>(base_lr_));
    ckpt.metadata[kMetaClipNormBits] = std::bit_cast<int64_t>(cfg_.clip_norm);
    ckpt.metadata[kMetaExecMode] = static_cast<int64_t>(cfg_.mode);
    ckpt.metadata[kMetaSchedPolicy] =
        static_cast<int64_t>(cfg_.schedule.policy);
    ckpt.metadata[kMetaSchedWarmup] = cfg_.schedule.warmup_steps;
    ckpt.metadata[kMetaSchedDecayEvery] = cfg_.schedule.decay_every;
    ckpt.metadata[kMetaSchedGammaBits] =
        std::bit_cast<int64_t>(cfg_.schedule.gamma);
    ckpt.metadata[kMetaSchedTotalSteps] = cfg_.schedule.total_steps;
    ckpt.metadata[kMetaSchedMinScaleBits] =
        std::bit_cast<int64_t>(cfg_.schedule.min_scale);
    return ckpt;
}

void
Trainer::saveCheckpoint(const std::string &path)
{
    serve::saveFile(makeCheckpoint(), path);
}

void
Trainer::loadCheckpoint(const serve::Checkpoint &ckpt)
{
    if (!ckpt.hasMeta(kMetaStep))
        throw serve::CheckpointError(
            "checkpoint '" + ckpt.model_name +
            "' carries no trainer resume metadata (not written by a "
            "Trainer?)");
    // Everything that shapes the post-resume trajectory must match, or
    // the continued run could not be bit-identical to an uninterrupted
    // one: the whole micro-batch split (a different split replays
    // different shard contents and a different reduction tree, and the
    // cursor is counted in micro-batches), the clip norm, the execution
    // mode (numerics), and the full LR schedule.
    const auto checkMeta = [&](const char *key, int64_t configured) {
        if (ckpt.meta(key) != configured)
            throw serve::CheckpointError(
                "checkpoint " + std::string(key) + " is " +
                std::to_string(ckpt.meta(key)) + " but this trainer uses " +
                std::to_string(configured) +
                "; a resumed run would not be bit-identical");
    };
    checkMeta(kMetaMicroBatch, cfg_.micro_batch);
    checkMeta(kMetaShards, cfg_.shards_per_step);
    checkMeta(kMetaAccum, cfg_.accum_rounds);
    checkMeta(kMetaClipNormBits, std::bit_cast<int64_t>(cfg_.clip_norm));
    checkMeta(kMetaExecMode, static_cast<int64_t>(cfg_.mode));
    checkMeta(kMetaSchedPolicy, static_cast<int64_t>(cfg_.schedule.policy));
    checkMeta(kMetaSchedWarmup, cfg_.schedule.warmup_steps);
    checkMeta(kMetaSchedDecayEvery, cfg_.schedule.decay_every);
    checkMeta(kMetaSchedGammaBits, std::bit_cast<int64_t>(cfg_.schedule.gamma));
    checkMeta(kMetaSchedTotalSteps, cfg_.schedule.total_steps);
    checkMeta(kMetaSchedMinScaleBits,
              std::bit_cast<int64_t>(cfg_.schedule.min_scale));
    if (std::bit_cast<uint64_t>(ckpt.meta(kMetaDataSeed)) != data_seed_)
        throw serve::CheckpointError(
            "checkpoint data-shuffle stream differs from this trainer's "
            "(different TrainerConfig::seed); resume would replay "
            "different batches");
    if (ckpt.meta(kMetaBaseLrBits) !=
        std::bit_cast<int64_t>(static_cast<double>(base_lr_)))
        throw serve::CheckpointError(
            "checkpoint base learning rate differs from this trainer's "
            "optimizer; resume would not be bit-identical");

    serve::restore(ckpt, *replicas_[0]->net, opt_.get());
    step_ = ckpt.meta(kMetaStep);
    epoch_ = ckpt.meta(kMetaEpoch);
    cursor_ = ckpt.meta(kMetaCursor);
    // Dataset identity is checked against this at the next run() call,
    // where the dataset is actually in hand.
    data_size_ = ckpt.meta(kMetaDataSize, 0);
    broadcastFromReplica0();
}

void
Trainer::loadCheckpointFile(const std::string &path)
{
    loadCheckpoint(serve::loadFile(path));
}

int
Trainer::publishNow()
{
    if (cfg_.publish_to == nullptr)
        throw std::logic_error(
            "Trainer::publishNow: no publish_to repository configured");
    return cfg_.publish_to->publishCheckpoint(
        cfg_.publish_name, makeCheckpoint(), cfg_.shape, factory_);
}

} // namespace train
} // namespace mirage
