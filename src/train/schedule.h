#ifndef MIRAGE_TRAIN_SCHEDULE_H
#define MIRAGE_TRAIN_SCHEDULE_H

/**
 * @file
 * Learning-rate schedules for the training orchestrator. A schedule is a
 * pure function of the global optimizer step — no hidden state — so a
 * resumed run recomputes exactly the rate an uninterrupted run would have
 * used at the same step (the trainer's bit-exact-resume contract), and an
 * N-replica run sees the same rate as a 1-replica run.
 *
 * The scale is applied through the Optimizer::setLr hook as
 * base_lr * scale(step), covering the paper's recipes (Sec. VI-B: step
 * decay for the CNNs, warmup for the transformer) plus cosine annealing.
 */

#include <cstdint>

namespace mirage {
namespace train {

/**
 * Piecewise schedule: an optional linear warmup ramp followed by one decay
 * policy. scale(step) is in (0, 1] and multiplies the optimizer's base
 * learning rate.
 */
struct LrSchedule
{
    enum class Policy
    {
        Constant,  ///< scale = 1 after warmup.
        StepDecay, ///< scale = gamma^(t / decay_every) after warmup.
        Cosine,    ///< half-cosine from 1 to min_scale over total_steps.
    };

    Policy policy = Policy::Constant;
    /// Steps of linear warmup: scale ramps (step+1)/warmup_steps before
    /// the decay policy takes over (t below counts post-warmup steps).
    int64_t warmup_steps = 0;
    // StepDecay knobs.
    int64_t decay_every = 0;
    double gamma = 0.1;
    // Cosine knobs: total_steps is the whole schedule length INCLUDING
    // warmup — annealing runs over steps [warmup_steps, total_steps) and
    // holds min_scale afterwards.
    int64_t total_steps = 0;
    double min_scale = 0.0;

    /** Learning-rate multiplier at global step `step` (0-based). */
    double scale(int64_t step) const;

    /** Throws std::invalid_argument naming the offending knob. */
    void validate() const;

    static LrSchedule constant(int64_t warmup_steps = 0);
    static LrSchedule stepDecay(int64_t decay_every, double gamma,
                                int64_t warmup_steps = 0);
    static LrSchedule cosine(int64_t total_steps, double min_scale = 0.0,
                             int64_t warmup_steps = 0);
};

} // namespace train
} // namespace mirage

#endif // MIRAGE_TRAIN_SCHEDULE_H
