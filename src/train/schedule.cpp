#include "train/schedule.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "common/logging.h"
#include "common/units.h"

namespace mirage {
namespace train {

double
LrSchedule::scale(int64_t step) const
{
    if (warmup_steps > 0 && step < warmup_steps) {
        return static_cast<double>(step + 1) /
               static_cast<double>(warmup_steps);
    }
    const int64_t t = step - warmup_steps;
    switch (policy) {
      case Policy::Constant:
        return 1.0;
      case Policy::StepDecay:
        // A clean abort instead of an integer-division SIGFPE when the
        // schedule was hand-built without validate().
        MIRAGE_ASSERT(decay_every >= 1,
                      "StepDecay schedule used without decay_every set");
        return std::pow(gamma, static_cast<double>(t / decay_every));
      case Policy::Cosine: {
        const int64_t horizon = total_steps - warmup_steps;
        MIRAGE_ASSERT(horizon >= 1,
                      "Cosine schedule used without total_steps set");
        if (t >= horizon)
            return min_scale;
        const double progress =
            static_cast<double>(t) / static_cast<double>(horizon);
        return min_scale +
               (1.0 - min_scale) * 0.5 * (1.0 + std::cos(units::kPi * progress));
      }
    }
    return 1.0; // unreachable; silences -Wreturn-type
}

void
LrSchedule::validate() const
{
    if (warmup_steps < 0)
        throw std::invalid_argument("LrSchedule: warmup_steps must be >= 0");
    if (policy == Policy::StepDecay) {
        if (decay_every <= 0)
            throw std::invalid_argument(
                "LrSchedule: StepDecay needs decay_every >= 1");
        if (gamma <= 0.0 || gamma > 1.0)
            throw std::invalid_argument(
                "LrSchedule: StepDecay gamma must be in (0, 1]");
    }
    if (policy == Policy::Cosine) {
        if (total_steps <= warmup_steps)
            throw std::invalid_argument(
                "LrSchedule: Cosine needs total_steps > warmup_steps");
        if (min_scale < 0.0 || min_scale > 1.0)
            throw std::invalid_argument(
                "LrSchedule: Cosine min_scale must be in [0, 1]");
    }
}

LrSchedule
LrSchedule::constant(int64_t warmup_steps)
{
    LrSchedule s;
    s.policy = Policy::Constant;
    s.warmup_steps = warmup_steps;
    return s;
}

LrSchedule
LrSchedule::stepDecay(int64_t decay_every, double gamma, int64_t warmup_steps)
{
    LrSchedule s;
    s.policy = Policy::StepDecay;
    s.decay_every = decay_every;
    s.gamma = gamma;
    s.warmup_steps = warmup_steps;
    return s;
}

LrSchedule
LrSchedule::cosine(int64_t total_steps, double min_scale, int64_t warmup_steps)
{
    LrSchedule s;
    s.policy = Policy::Cosine;
    s.total_steps = total_steps;
    s.min_scale = min_scale;
    s.warmup_steps = warmup_steps;
    return s;
}

} // namespace train
} // namespace mirage
