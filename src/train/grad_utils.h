#ifndef MIRAGE_TRAIN_GRAD_UTILS_H
#define MIRAGE_TRAIN_GRAD_UTILS_H

/**
 * @file
 * Gradient hygiene for the training orchestrator: global-norm clipping
 * (the standard max-norm recipe: scale every gradient by max_norm / norm
 * when the global L2 norm exceeds max_norm) and a finite-value guard that
 * catches NaN/Inf gradients at the step boundary, where the offending
 * layer is still identifiable, instead of letting them poison the weights.
 *
 * All reductions accumulate in double over a fixed serial order, so the
 * results are deterministic and independent of replica/thread count.
 */

#include <span>
#include <vector>

#include "nn/layer.h"

namespace mirage {
namespace train {

/** Global L2 norm over a flat gradient vector. */
double globalGradNorm(std::span<const float> grads);

/** Global L2 norm across every parameter's gradient, in params order. */
double globalGradNorm(const std::vector<nn::Param *> &params);

/**
 * Clips `grads` in place to a global L2 norm of at most `max_norm` and
 * returns the pre-clip norm. A norm exactly equal to max_norm is NOT
 * scaled (the boundary is inclusive); max_norm must be > 0.
 */
double clipGradNorm(std::span<float> grads, double max_norm);

/** clipGradNorm over every parameter's gradient as one global vector. */
double clipGradNorm(const std::vector<nn::Param *> &params, double max_norm);

/** True when every element is finite (no NaN/Inf). */
bool allFinite(std::span<const float> grads);

/**
 * Debug-build guard: MIRAGE_DASSERTs that `grads` contains no NaN/Inf,
 * reporting `what` (e.g. the training-step index) in the failure message.
 * Compiled out under NDEBUG like every MIRAGE_DASSERT; callers that need
 * the check in release builds use allFinite() directly.
 */
void assertFiniteGrads(std::span<const float> grads, const char *what);

} // namespace train
} // namespace mirage

#endif // MIRAGE_TRAIN_GRAD_UTILS_H
