#include "train/grad_utils.h"

#include <cmath>

#include "common/logging.h"

namespace mirage {
namespace train {

double
globalGradNorm(std::span<const float> grads)
{
    double sum_sq = 0.0;
    for (const float g : grads)
        sum_sq += static_cast<double>(g) * static_cast<double>(g);
    return std::sqrt(sum_sq);
}

double
globalGradNorm(const std::vector<nn::Param *> &params)
{
    double sum_sq = 0.0;
    for (const nn::Param *p : params)
        for (int64_t i = 0; i < p->grad.size(); ++i)
            sum_sq += static_cast<double>(p->grad[i]) *
                      static_cast<double>(p->grad[i]);
    return std::sqrt(sum_sq);
}

namespace {

/** Scale factor for one clip decision; 1.0 when no scaling is needed. */
float
clipScale(double norm, double max_norm)
{
    MIRAGE_ASSERT(max_norm > 0.0, "clip max_norm must be > 0");
    if (!(norm > max_norm)) // inclusive boundary; also rejects NaN norms
        return 1.0f;
    return static_cast<float>(max_norm / norm);
}

} // namespace

double
clipGradNorm(std::span<float> grads, double max_norm)
{
    const double norm = globalGradNorm(grads);
    const float scale = clipScale(norm, max_norm);
    if (scale != 1.0f)
        for (float &g : grads)
            g *= scale;
    return norm;
}

double
clipGradNorm(const std::vector<nn::Param *> &params, double max_norm)
{
    const double norm = globalGradNorm(params);
    const float scale = clipScale(norm, max_norm);
    if (scale != 1.0f)
        for (nn::Param *p : params)
            for (int64_t i = 0; i < p->grad.size(); ++i)
                p->grad[i] *= scale;
    return norm;
}

bool
allFinite(std::span<const float> grads)
{
    for (const float g : grads)
        if (!std::isfinite(g))
            return false;
    return true;
}

void
assertFiniteGrads(std::span<const float> grads, const char *what)
{
    MIRAGE_DASSERT(allFinite(grads),
                   "non-finite gradient (NaN/Inf) detected at ", what);
    (void)grads; // NDEBUG: DASSERT compiles out
    (void)what;
}

} // namespace train
} // namespace mirage
