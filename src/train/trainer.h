#ifndef MIRAGE_TRAIN_TRAINER_H
#define MIRAGE_TRAIN_TRAINER_H

/**
 * @file
 * Deterministic data-parallel training orchestrator.
 *
 * The Trainer runs synchronous data-parallel training of any models::
 * network across N replicas, each a full model copy on its own
 * MirageAccelerator. Every optimizer step consumes a fixed micro-batch
 * structure — shards_per_step micro-batches per accumulation round,
 * accum_rounds rounds per step — that is independent of the replica
 * count; replicas execute shard q of a round when q % replicas == their
 * index, and shard gradients are combined by a fixed binary-tree
 * reduction over the shard index. Because the tree shape, the shard
 * contents (BatchIterator is a pure function of seed/epoch/index) and the
 * per-shard numerics (deterministic at any thread count, PR 2) never
 * depend on N, an N-replica run is bit-identical to a 1-replica run at
 * the same effective batch size.
 *
 * Around that core: gradient accumulation, global-norm clipping with a
 * debug NaN/Inf guard, LrSchedule-driven learning rates through the
 * Optimizer::setLr hook, periodic checkpointing through serve/checkpoint
 * with bit-exact mid-run resume (optimizer state, schedule step, epoch
 * and batch cursor, and the data-shuffle RNG stream base all round-trip
 * through the v2 metadata section), and an optional train->serve bridge
 * that hot-publishes each checkpoint into a serve::ModelRepository for
 * zero-downtime model refresh.
 *
 * Determinism scope: the contract covers model parameters and optimizer
 * state. Non-parameter layer buffers that integrate a replica's local
 * shard stream (BatchNorm running statistics) follow whichever shards a
 * replica happened to execute, exactly as in any synchronous-DP system;
 * checkpoints and evaluation read replica 0.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/config.h"
#include "core/mirage.h"
#include "models/zoo.h"
#include "nn/data.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "serve/checkpoint.h"
#include "serve/repository.h"
#include "train/schedule.h"

namespace mirage {
namespace train {

/** Trainer configuration. */
struct TrainerConfig
{
    /// Model replicas (one full model + accelerator each).
    int replicas = 1;
    /// Rows per micro-batch (shard); every shard has exactly this many.
    int micro_batch = 16;
    /// Micro-batches per accumulation round; fixed w.r.t. replicas, so it
    /// also bounds the useful replica count (extras idle).
    int shards_per_step = 1;
    /// Accumulation rounds per optimizer step.
    int accum_rounds = 1;
    /// Global-norm gradient clip; 0 disables.
    double clip_norm = 0.0;
    /// Learning-rate schedule applied as base_lr * scale(step).
    LrSchedule schedule;
    /// Root seed: data shuffling and weight init derive split streams.
    uint64_t seed = 0x54524149u; // 'TRAI'
    /// Numerics for every replica's GEMMs.
    core::ExecutionMode mode = core::ExecutionMode::Emulated;
    /// Configuration for each replica's accelerator.
    arch::MirageConfig accel;

    /// Checkpoint file written every checkpoint_every_steps optimizer
    /// steps (and publish, when a repository is wired). Empty: never.
    std::string checkpoint_path;
    int64_t checkpoint_every_steps = 0;

    /// Train->serve bridge: when set, every checkpoint boundary also
    /// hot-publishes the current weights into this repository under
    /// publish_name (borrowed; must outlive the trainer).
    serve::ModelRepository *publish_to = nullptr;
    std::string publish_name;

    /// Analytic layer shapes for modeled accelerator time/energy per step
    /// (MiragePerfModel/MirageEnergyModel); empty layers: skip modeling.
    models::ModelShape shape;

    bool verbose = false;

    /** Samples consumed per optimizer step. */
    int64_t effectiveBatch() const
    {
        return static_cast<int64_t>(micro_batch) * shards_per_step *
               accum_rounds;
    }

    /** Throws std::invalid_argument naming the offending knob. */
    void validate() const;
};

/** Metrics of one run() call plus cumulative modeled accelerator cost. */
struct TrainReport
{
    std::vector<float> epoch_loss;      ///< Mean shard loss per epoch.
    std::vector<float> epoch_train_acc; ///< Training accuracy per epoch.
    std::vector<float> epoch_test_acc;  ///< Only when a test set is given.
    std::vector<float> step_loss;       ///< Mean shard loss per step.
    std::vector<float> step_lr;         ///< Scheduled rate used per step.

    int64_t steps_run = 0;     ///< Optimizer steps executed by this run().
    int64_t final_step = 0;    ///< Trainer's global step after the run.
    int64_t samples_seen = 0;  ///< steps_run * effectiveBatch().
    double wall_s = 0.0;       ///< Wall-clock seconds of this run().
    /// Sustained training throughput: samples over the seconds spent in
    /// compute (excludes per-epoch test evaluation and checkpoint I/O).
    double samples_per_s = 0.0;

    /// Modeled accelerator cost of one optimizer step (effective-batch
    /// training step through MiragePerfModel/MirageEnergyModel); zero
    /// when TrainerConfig::shape is empty.
    double modeled_step_time_s = 0.0;
    double modeled_step_energy_j = 0.0;
    double modeled_time_s = 0.0;   ///< modeled_step_time_s * steps_run.
    double modeled_energy_j = 0.0; ///< modeled_step_energy_j * steps_run.

    double max_grad_norm = 0.0;  ///< Largest pre-clip global norm seen.
    uint64_t clipped_steps = 0;  ///< Steps whose gradient was rescaled.
    int replica_failures = 0;    ///< Replicas elided after mid-step failure.
    int elastic_resumes = 0;     ///< Checkpoint reloads those failures forced.
    int checkpoints_written = 0; ///< Files saved by this run().
    int last_published_version = 0; ///< 0 when nothing was published.
    float final_test_accuracy = 0.0f;

    /** Modeled energy per sample [J]; 0 without a shape. */
    double
    modeledJoulesPerSample() const
    {
        return samples_seen > 0
                   ? modeled_energy_j / static_cast<double>(samples_seen)
                   : 0.0;
    }
};

/** The data-parallel training orchestrator. */
class Trainer
{
  public:
    /**
     * Builds `cfg.replicas` model replicas via `factory` (each on its own
     * accelerator; all replicas share one init stream so their weights
     * start bit-identical) and takes ownership of the optimizer, whose
     * current lr() becomes the schedule's base rate.
     */
    Trainer(serve::ModelFactory factory, std::unique_ptr<nn::Optimizer> opt,
            TrainerConfig cfg);
    ~Trainer();

    Trainer(const Trainer &) = delete;
    Trainer &operator=(const Trainer &) = delete;

    /**
     * Trains on `train` until `target_epochs` full epochs have been
     * completed (an absolute count: a trainer resumed at epoch 2 runs
     * epochs 2..target_epochs-1, continuing mid-epoch from its cursor).
     * The ragged tail of an epoch that cannot fill a whole optimizer step
     * is skipped. `test` (optional) is evaluated after every epoch.
     *
     * `max_steps` > 0 stops this call after that many optimizer steps —
     * possibly mid-epoch, which is exactly the state checkpoint-resume
     * restores bit-exactly (save, rebuild, loadCheckpoint, run again).
     */
    TrainReport run(const nn::Dataset &train, const nn::Dataset *test,
                    int target_epochs, int64_t max_steps = 0);

    /** Snapshot of replica 0 + optimizer + resume metadata. */
    serve::Checkpoint makeCheckpoint();

    /** makeCheckpoint() to a file via serve::saveFile. */
    void saveCheckpoint(const std::string &path);

    /**
     * Restores parameters, optimizer state and the training position
     * (step/epoch/cursor) into this trainer and re-broadcasts to every
     * replica. Throws CheckpointError when the checkpoint lacks trainer
     * metadata or was produced under a different effective batch size,
     * data seed, or base learning rate — configurations whose resumed run
     * could not be bit-identical to the uninterrupted one. The dataset's
     * row count is validated at the next run() call (when the dataset is
     * in hand); the replica count may differ freely.
     */
    void loadCheckpoint(const serve::Checkpoint &ckpt);

    /** loadCheckpoint() from a file via serve::loadFile. */
    void loadCheckpointFile(const std::string &path);

    /**
     * Hot-publishes the current weights into cfg.publish_to immediately;
     * returns the new version. Throws std::logic_error when no repository
     * is configured.
     */
    int publishNow();

    /** Replica 0's network (the master copy). */
    nn::Sequential &net();

    nn::Optimizer &optimizer() { return *opt_; }
    const TrainerConfig &config() const { return cfg_; }

    int64_t globalStep() const { return step_; }
    int64_t epochIndex() const { return epoch_; }
    /** Micro-batches consumed within the current epoch. */
    int64_t cursorBatch() const { return cursor_; }
    /** Learning rate the next step will use: base_lr * scale(step). */
    double scheduledLr() const;

  private:
    struct Replica;

    std::string modelName() const;
    void broadcastFromReplica0();
    void trainStep(const nn::BatchIterator &it, TrainReport &report,
                   double &epoch_loss, int64_t &epoch_correct);
    /// Elides dead replicas and (when a checkpoint file exists) reloads
    /// the last checkpoint for an elastic resume at the surviving count.
    void handleReplicaFailure(const std::vector<int> &dead,
                              TrainReport &report);

    TrainerConfig cfg_;
    serve::ModelFactory factory_;
    std::unique_ptr<nn::Optimizer> opt_;
    float base_lr_ = 0.0f;
    uint64_t data_seed_ = 0;

    std::vector<std::unique_ptr<Replica>> replicas_;
    int64_t flat_size_ = 0; ///< Total parameter elements per replica.

    // Per-shard scratch, sized once: grads (flat), loss, correct counts.
    std::vector<std::vector<float>> shard_grads_;
    std::vector<float> shard_loss_;
    std::vector<int> shard_correct_;
    std::vector<float> step_grad_; ///< Accumulated mean gradient.
    /// One reusable batch per replica (BatchIterator::batchInto target),
    /// so steady-state steps add no allocator traffic of their own.
    std::vector<nn::Dataset> shard_batch_;
    /// Per-replica failure flags for the current step (pre-sized so the
    /// steady-state check stays alloc-free).
    std::vector<uint8_t> replica_failed_;

    int64_t step_ = 0;   ///< Optimizer steps since construction/restore.
    int64_t epoch_ = 0;  ///< Current epoch index.
    int64_t cursor_ = 0; ///< Micro-batches consumed in the current epoch.
    int64_t data_size_ = 0; ///< Rows of the last run() dataset (0: none).
    double step_wall_s_ = 0.0; ///< Wall seconds inside compute, this run.
};

} // namespace train
} // namespace mirage

#endif // MIRAGE_TRAIN_TRAINER_H
