#include "nn/tensor.h"

#include <sstream>

#include "common/logging.h"

namespace mirage {
namespace nn {

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape))
{
    data_.assign(static_cast<size_t>(elementCount(shape_)), 0.0f);
}

Tensor
Tensor::randn(std::vector<int> shape, Rng &rng, float stddev)
{
    Tensor t(std::move(shape));
    for (auto &v : t.data_)
        v = static_cast<float>(rng.gaussian(0.0, stddev));
    return t;
}

int
Tensor::dim(size_t i) const
{
    MIRAGE_ASSERT(i < shape_.size(), "dimension index out of range");
    return shape_[i];
}

void
Tensor::fill(float v)
{
    for (auto &x : data_)
        x = v;
}

Tensor
Tensor::reshaped(std::vector<int> new_shape) const
{
    MIRAGE_ASSERT(elementCount(new_shape) == size(),
                  "reshape changes element count");
    Tensor t;
    t.shape_ = std::move(new_shape);
    t.data_ = data_;
    return t;
}

int64_t
Tensor::elementCount(const std::vector<int> &shape)
{
    int64_t count = 1;
    for (int d : shape) {
        MIRAGE_ASSERT(d > 0, "tensor dimensions must be positive");
        count *= d;
    }
    return count;
}

std::string
Tensor::shapeString() const
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < shape_.size(); ++i)
        oss << shape_[i] << (i + 1 < shape_.size() ? ", " : "");
    oss << "]";
    return oss.str();
}

std::vector<float>
matmulFp32(const std::vector<float> &a, const std::vector<float> &b, int m,
           int k, int n)
{
    MIRAGE_ASSERT(a.size() == static_cast<size_t>(m) * k, "A shape mismatch");
    MIRAGE_ASSERT(b.size() == static_cast<size_t>(k) * n, "B shape mismatch");
    std::vector<float> c(static_cast<size_t>(m) * n, 0.0f);
    for (int i = 0; i < m; ++i) {
        for (int kk = 0; kk < k; ++kk) {
            const float a_ik = a[static_cast<size_t>(i) * k + kk];
            if (a_ik == 0.0f)
                continue;
            const float *b_row = &b[static_cast<size_t>(kk) * n];
            float *c_row = &c[static_cast<size_t>(i) * n];
            for (int j = 0; j < n; ++j)
                c_row[j] += a_ik * b_row[j];
        }
    }
    return c;
}

std::vector<float>
transposed(const std::vector<float> &a, int rows, int cols)
{
    std::vector<float> t(a.size());
    transposeInto(a, rows, cols, t);
    return t;
}

void
transposeInto(std::span<const float> a, int rows, int cols,
              std::span<float> out)
{
    MIRAGE_ASSERT(a.size() == static_cast<size_t>(rows) * cols,
                  "transpose shape mismatch");
    MIRAGE_ASSERT(out.size() == a.size(), "transpose output size mismatch");
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            out[static_cast<size_t>(c) * rows + r] =
                a[static_cast<size_t>(r) * cols + c];
}

} // namespace nn
} // namespace mirage
