#include "nn/layers_basic.h"

#include <cmath>

#include "common/logging.h"
#include "common/workspace.h"
#include "obs/fidelity.h"

namespace mirage {
namespace nn {

Dense::Dense(int in_features, int out_features, GemmBackend *backend,
             Rng &rng, bool bias)
    : in_(in_features), out_(out_features), has_bias_(bias), backend_(backend)
{
    MIRAGE_ASSERT(backend_ != nullptr, "Dense needs a GEMM backend");
    const float scale = std::sqrt(2.0f / static_cast<float>(in_));
    weight_.name = "dense.weight";
    weight_.value = Tensor::randn({out_, in_}, rng, scale);
    weight_.grad = Tensor::zeros({out_, in_});
    if (has_bias_) {
        bias_.name = "dense.bias";
        bias_.value = Tensor::zeros({out_});
        bias_.grad = Tensor::zeros({out_});
    }
}

Tensor
Dense::forward(const Tensor &x, bool /*training*/)
{
    // Accepts any rank >= 2 with trailing feature dim; leading dims are
    // flattened into the batch (per-token application for [B, T, D]).
    MIRAGE_ASSERT(x.rank() >= 2 && x.shape().back() == in_,
                  "Dense expects [..., ", in_, "], got ", x.shapeString());
    // Shadow probes sampled inside the backend attribute to this label.
    obs::fidelity::LayerScope fidelity_scope("Dense.fwd");
    input_shape_ = x.shape();
    const int batch = static_cast<int>(x.size() / in_);
    cached_input_ = x.reshaped({batch, in_});

    // y[b, o] = sum_i x[b, i] * W[o, i]: C = X * W^T. The transposed
    // weight view is per-call scratch from this thread's arena.
    Workspace &ws = threadWorkspace();
    Workspace::Scope scope(ws);
    std::span<float> w_t =
        ws.alloc<float>(static_cast<size_t>(out_) * in_);
    transposeInto(weight_.value.vec(), out_, in_, w_t);
    std::vector<int> out_shape = input_shape_;
    out_shape.back() = out_;
    Tensor y(out_shape);
    backend_->gemm(cached_input_.vec(), w_t, batch, in_, out_, false, false,
                   y.vec());
    if (has_bias_) {
        for (int b = 0; b < batch; ++b)
            for (int o = 0; o < out_; ++o)
                y[static_cast<int64_t>(b) * out_ + o] += bias_.value[o];
    }
    return y;
}

Tensor
Dense::backward(const Tensor &grad_out)
{
    obs::fidelity::LayerScope fidelity_scope("Dense.bwd");
    const int batch = cached_input_.dim(0);
    MIRAGE_ASSERT(grad_out.size() == static_cast<int64_t>(batch) * out_,
                  "Dense backward shape mismatch");
    const Tensor dy = grad_out.reshaped({batch, out_});
    Workspace &ws = threadWorkspace();
    Workspace::Scope scope(ws);

    // dX = dY * W  : (batch x out) * (out x in).
    Tensor grad_in(input_shape_);
    backend_->gemm(dy.vec(), weight_.value.vec(), batch, out_, in_, true,
                   false, grad_in.vec());

    // dW = dY^T * X : (out x batch) * (batch x in).
    std::span<float> dy_t =
        ws.alloc<float>(static_cast<size_t>(batch) * out_);
    transposeInto(dy.vec(), batch, out_, dy_t);
    std::span<float> dw = ws.alloc<float>(static_cast<size_t>(out_) * in_);
    backend_->gemm(dy_t, cached_input_.vec(), out_, batch, in_, true, false,
                   dw);
    for (int64_t i = 0; i < weight_.grad.size(); ++i)
        weight_.grad[i] += dw[static_cast<size_t>(i)];

    if (has_bias_) {
        for (int b = 0; b < batch; ++b)
            for (int o = 0; o < out_; ++o)
                bias_.grad[o] += dy[static_cast<int64_t>(b) * out_ + o];
    }
    return grad_in;
}

std::vector<Param *>
Dense::params()
{
    if (has_bias_)
        return {&weight_, &bias_};
    return {&weight_};
}

Tensor
ReLU::forward(const Tensor &x, bool /*training*/)
{
    mask_ = Tensor(x.shape());
    Tensor y(x.shape());
    for (int64_t i = 0; i < x.size(); ++i) {
        const bool on = x[i] > 0.0f;
        mask_[i] = on ? 1.0f : 0.0f;
        y[i] = on ? x[i] : 0.0f;
    }
    return y;
}

Tensor
ReLU::backward(const Tensor &grad_out)
{
    MIRAGE_ASSERT(grad_out.size() == mask_.size(), "ReLU backward mismatch");
    Tensor grad_in(grad_out.shape());
    for (int64_t i = 0; i < grad_out.size(); ++i)
        grad_in[i] = grad_out[i] * mask_[i];
    return grad_in;
}

namespace {

constexpr float kGeluC = 0.7978845608028654f; // sqrt(2/pi)

float
geluValue(float x)
{
    const float t = std::tanh(kGeluC * (x + 0.044715f * x * x * x));
    return 0.5f * x * (1.0f + t);
}

float
geluGrad(float x)
{
    const float u = kGeluC * (x + 0.044715f * x * x * x);
    const float t = std::tanh(u);
    const float sech2 = 1.0f - t * t;
    const float du = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * sech2 * du;
}

} // namespace

Tensor
Gelu::forward(const Tensor &x, bool /*training*/)
{
    cached_input_ = x;
    Tensor y(x.shape());
    for (int64_t i = 0; i < x.size(); ++i)
        y[i] = geluValue(x[i]);
    return y;
}

Tensor
Gelu::backward(const Tensor &grad_out)
{
    Tensor grad_in(grad_out.shape());
    for (int64_t i = 0; i < grad_out.size(); ++i)
        grad_in[i] = grad_out[i] * geluGrad(cached_input_[i]);
    return grad_in;
}

Tensor
Flatten::forward(const Tensor &x, bool /*training*/)
{
    MIRAGE_ASSERT(x.rank() >= 2, "Flatten needs a batch dimension");
    input_shape_ = x.shape();
    const int batch = x.dim(0);
    const int rest = static_cast<int>(x.size() / batch);
    return x.reshaped({batch, rest});
}

Tensor
Flatten::backward(const Tensor &grad_out)
{
    return grad_out.reshaped(input_shape_);
}

Tensor
SequenceMeanPool::forward(const Tensor &x, bool /*training*/)
{
    MIRAGE_ASSERT(x.rank() == 3, "SequenceMeanPool expects [B, T, D]");
    input_shape_ = x.shape();
    const int batch = x.dim(0), seq = x.dim(1), dim = x.dim(2);
    Tensor y({batch, dim});
    const float inv = 1.0f / static_cast<float>(seq);
    for (int b = 0; b < batch; ++b)
        for (int t = 0; t < seq; ++t)
            for (int d = 0; d < dim; ++d)
                y[static_cast<int64_t>(b) * dim + d] +=
                    x[(static_cast<int64_t>(b) * seq + t) * dim + d] * inv;
    return y;
}

Tensor
SequenceMeanPool::backward(const Tensor &grad_out)
{
    const int batch = input_shape_[0], seq = input_shape_[1],
              dim = input_shape_[2];
    Tensor grad_in(input_shape_);
    const float inv = 1.0f / static_cast<float>(seq);
    for (int b = 0; b < batch; ++b)
        for (int t = 0; t < seq; ++t)
            for (int d = 0; d < dim; ++d)
                grad_in[(static_cast<int64_t>(b) * seq + t) * dim + d] =
                    grad_out[static_cast<int64_t>(b) * dim + d] * inv;
    return grad_in;
}

} // namespace nn
} // namespace mirage
