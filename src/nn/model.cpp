#include "nn/model.h"

#include <algorithm>

#include "common/logging.h"

namespace mirage {
namespace nn {

Sequential &
Sequential::add(std::unique_ptr<Layer> layer)
{
    MIRAGE_ASSERT(layer != nullptr, "cannot add a null layer");
    layers_.push_back(std::move(layer));
    return *this;
}

Tensor
Sequential::forward(const Tensor &x, bool training)
{
    Tensor h = x;
    for (auto &layer : layers_)
        h = layer->forward(h, training);
    return h;
}

Tensor
Sequential::backward(const Tensor &grad_out)
{
    Tensor g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

std::vector<Param *>
Sequential::params()
{
    std::vector<Param *> all;
    for (auto &layer : layers_) {
        const auto p = layer->params();
        all.insert(all.end(), p.begin(), p.end());
    }
    return all;
}

void
Sequential::appendNamedParams(const std::string &prefix,
                              std::vector<NamedParam> &out)
{
    for (size_t i = 0; i < layers_.size(); ++i) {
        layers_[i]->appendNamedParams(
            prefix + "l" + std::to_string(i) + ".", out);
    }
}

ResidualBlock::ResidualBlock(std::unique_ptr<Layer> main,
                             std::unique_ptr<Layer> shortcut)
    : main_(std::move(main)), shortcut_(std::move(shortcut))
{
    MIRAGE_ASSERT(main_ != nullptr, "residual block needs a main path");
}

Tensor
ResidualBlock::forward(const Tensor &x, bool training)
{
    Tensor main_out = main_->forward(x, training);
    Tensor skip = shortcut_ ? shortcut_->forward(x, training) : x;
    MIRAGE_ASSERT(main_out.size() == skip.size(),
                  "residual paths disagree: ", main_out.shapeString(), " vs ",
                  skip.shapeString());
    for (int64_t i = 0; i < main_out.size(); ++i)
        main_out[i] += skip[i];
    return main_out;
}

Tensor
ResidualBlock::backward(const Tensor &grad_out)
{
    Tensor grad_main = main_->backward(grad_out);
    Tensor grad_skip =
        shortcut_ ? shortcut_->backward(grad_out) : grad_out;
    MIRAGE_ASSERT(grad_main.size() == grad_skip.size(),
                  "residual backward mismatch");
    for (int64_t i = 0; i < grad_main.size(); ++i)
        grad_main[i] += grad_skip[i];
    return grad_main;
}

std::vector<Param *>
ResidualBlock::params()
{
    std::vector<Param *> all = main_->params();
    if (shortcut_) {
        const auto p = shortcut_->params();
        all.insert(all.end(), p.begin(), p.end());
    }
    return all;
}

void
ResidualBlock::appendNamedParams(const std::string &prefix,
                                 std::vector<NamedParam> &out)
{
    main_->appendNamedParams(prefix + "main.", out);
    if (shortcut_)
        shortcut_->appendNamedParams(prefix + "shortcut.", out);
}

float
evaluateAccuracy(Layer &model, const Dataset &data, int batch_size)
{
    MIRAGE_ASSERT(data.size() > 0, "empty dataset");
    int correct = 0;
    for (int begin = 0; begin < data.size(); begin += batch_size) {
        const int count = std::min(batch_size, data.size() - begin);
        const Dataset batch = data.slice(begin, count);
        const Tensor logits = model.forward(batch.inputs, /*training=*/false);
        const std::vector<int> pred = argmaxRows(logits);
        for (int i = 0; i < count; ++i)
            correct += (pred[static_cast<size_t>(i)] ==
                        batch.labels[static_cast<size_t>(i)]);
    }
    return static_cast<float>(correct) / static_cast<float>(data.size());
}

TrainResult
trainClassifier(Layer &model, Optimizer &opt, const Dataset &train,
                const Dataset &test, const TrainConfig &cfg)
{
    MIRAGE_ASSERT(cfg.epochs >= 1 && cfg.batch_size >= 1, "bad train config");
    TrainResult result;
    BatchIterator batches_it(train, cfg.batch_size, cfg.shuffle_seed,
                             cfg.shuffle, /*drop_last=*/false);
    const std::vector<Param *> params = model.params();

    float prev_scale = 1.0f;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        if (!cfg.lr_schedule.empty()) {
            const float scale =
                cfg.lr_schedule[std::min<size_t>(epoch,
                                                 cfg.lr_schedule.size() - 1)];
            opt.setLr(opt.lr() * scale / prev_scale);
            prev_scale = scale;
        }
        batches_it.setEpoch(epoch);

        double epoch_loss = 0.0;
        int batches = 0, correct = 0;
        Dataset batch;
        while (batches_it.next(batch)) {
            Optimizer::zeroGrad(params);
            const Tensor logits = model.forward(batch.inputs, true);
            const LossResult loss = softmaxCrossEntropy(logits, batch.labels);
            model.backward(loss.grad);
            opt.step(params);

            epoch_loss += loss.loss;
            ++batches;
            const std::vector<int> pred = argmaxRows(logits);
            for (size_t i = 0; i < batch.labels.size(); ++i)
                correct += (pred[i] == batch.labels[i]);
        }
        result.epoch_loss.push_back(
            static_cast<float>(epoch_loss / std::max(1, batches)));
        result.epoch_train_acc.push_back(static_cast<float>(correct) /
                                         static_cast<float>(train.size()));
        if (cfg.verbose) {
            MIRAGE_INFORM("epoch ", epoch, ": loss=",
                          result.epoch_loss.back(), " train_acc=",
                          result.epoch_train_acc.back());
        }
    }
    result.final_test_accuracy = evaluateAccuracy(model, test);
    return result;
}

} // namespace nn
} // namespace mirage
