#ifndef MIRAGE_NN_ATTENTION_H
#define MIRAGE_NN_ATTENTION_H

/**
 * @file
 * Multi-head self-attention for the transformer accuracy benchmark. All
 * six GEMM families (Q/K/V projections, attention scores, context, output
 * projection) run through the quantized GEMM backend, matching how the
 * paper's GEMM swap covers transformer training.
 */

#include "nn/layer.h"

namespace mirage {
namespace nn {

/**
 * Multi-head self-attention over [B, T, D] inputs. Optionally causal:
 * position t attends only to positions <= t (decoder-style masking).
 */
class MultiHeadSelfAttention : public Layer
{
  public:
    MultiHeadSelfAttention(int dim, int heads, GemmBackend *backend, Rng &rng,
                           bool causal = false);

    std::string name() const override { return "MHSA"; }
    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;

  private:
    int dim_;
    int heads_;
    int head_dim_;
    GemmBackend *backend_;
    bool causal_;
    Param wq_, wk_, wv_, wo_; ///< Each [D, D].
    // Forward context.
    Tensor cached_input_;     ///< [B, T, D]
    std::vector<float> q_, k_, v_;   ///< [B*T, D] projected
    std::vector<float> probs_;       ///< [B, H, T, T] softmax rows
    std::vector<float> ctx_;         ///< [B*T, D] pre-output-projection
    int batch_ = 0, seq_ = 0;
};

} // namespace nn
} // namespace mirage

#endif // MIRAGE_NN_ATTENTION_H
