#include "nn/attention.h"

#include <cmath>

#include "common/logging.h"

namespace mirage {
namespace nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int dim, int heads,
                                               GemmBackend *backend, Rng &rng,
                                               bool causal)
    : dim_(dim), heads_(heads), head_dim_(dim / heads), backend_(backend),
      causal_(causal)
{
    MIRAGE_ASSERT(backend_ != nullptr, "MHSA needs a GEMM backend");
    if (dim % heads != 0)
        MIRAGE_FATAL("model dim ", dim, " not divisible by heads ", heads);
    const float scale = std::sqrt(1.0f / static_cast<float>(dim));
    for (Param *p : {&wq_, &wk_, &wv_, &wo_}) {
        p->value = Tensor::randn({dim_, dim_}, rng, scale);
        p->grad = Tensor::zeros({dim_, dim_});
    }
    wq_.name = "attn.wq";
    wk_.name = "attn.wk";
    wv_.name = "attn.wv";
    wo_.name = "attn.wo";
}

namespace {

/** Extracts head h of row-major [B*T, D] into [T, dh] for sample b. */
void
sliceHead(const std::vector<float> &src, int b, int h, int seq, int dim,
          int head_dim, std::vector<float> &dst)
{
    dst.resize(static_cast<size_t>(seq) * head_dim);
    for (int t = 0; t < seq; ++t)
        for (int d = 0; d < head_dim; ++d)
            dst[static_cast<size_t>(t) * head_dim + d] =
                src[(static_cast<size_t>(b) * seq + t) * dim + h * head_dim +
                    d];
}

/** Adds [T, dh] back into head h of [B*T, D]. */
void
scatterHead(const std::vector<float> &src, int b, int h, int seq, int dim,
            int head_dim, std::vector<float> &dst)
{
    for (int t = 0; t < seq; ++t)
        for (int d = 0; d < head_dim; ++d)
            dst[(static_cast<size_t>(b) * seq + t) * dim + h * head_dim + d] +=
                src[static_cast<size_t>(t) * head_dim + d];
}

} // namespace

Tensor
MultiHeadSelfAttention::forward(const Tensor &x, bool /*training*/)
{
    MIRAGE_ASSERT(x.rank() == 3 && x.dim(2) == dim_,
                  "MHSA expects [B, T, ", dim_, "], got ", x.shapeString());
    cached_input_ = x;
    batch_ = x.dim(0);
    seq_ = x.dim(1);
    const int rows = batch_ * seq_;

    // Projections: (B*T x D) * (D x D).
    const std::vector<float> wq_t = transposed(wq_.value.vec(), dim_, dim_);
    const std::vector<float> wk_t = transposed(wk_.value.vec(), dim_, dim_);
    const std::vector<float> wv_t = transposed(wv_.value.vec(), dim_, dim_);
    q_ = backend_->gemm(x.vec(), wq_t, rows, dim_, dim_, false, false);
    k_ = backend_->gemm(x.vec(), wk_t, rows, dim_, dim_, false, false);
    v_ = backend_->gemm(x.vec(), wv_t, rows, dim_, dim_, false, false);

    probs_.assign(static_cast<size_t>(batch_) * heads_ * seq_ * seq_, 0.0f);
    ctx_.assign(static_cast<size_t>(rows) * dim_, 0.0f);
    const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));

    std::vector<float> qh, kh, vh;
    for (int b = 0; b < batch_; ++b) {
        for (int h = 0; h < heads_; ++h) {
            sliceHead(q_, b, h, seq_, dim_, head_dim_, qh);
            sliceHead(k_, b, h, seq_, dim_, head_dim_, kh);
            sliceHead(v_, b, h, seq_, dim_, head_dim_, vh);

            // Scores = Q K^T / sqrt(dh): (T x dh) * (dh x T).
            const std::vector<float> kh_t = transposed(kh, seq_, head_dim_);
            std::vector<float> scores = backend_->gemm(qh, kh_t, seq_,
                                                       head_dim_, seq_, false,
                                                       false);
            // Row softmax (FP32, like all nonlinearities in the paper).
            float *p_base =
                &probs_[((static_cast<size_t>(b) * heads_ + h) * seq_) * seq_];
            for (int t = 0; t < seq_; ++t) {
                // Causal masking restricts row t to positions u <= t; the
                // masked probabilities stay exactly zero, so the backward
                // pass needs no special casing (P = 0 kills dS there).
                const int u_lim = causal_ ? t + 1 : seq_;
                float max_v = -1e30f;
                for (int u = 0; u < u_lim; ++u)
                    max_v = std::max(max_v,
                                     scores[static_cast<size_t>(t) * seq_ + u] *
                                         inv_sqrt);
                double denom = 0.0;
                for (int u = 0; u < u_lim; ++u) {
                    const float e = std::exp(
                        scores[static_cast<size_t>(t) * seq_ + u] * inv_sqrt -
                        max_v);
                    p_base[static_cast<size_t>(t) * seq_ + u] = e;
                    denom += e;
                }
                for (int u = 0; u < u_lim; ++u)
                    p_base[static_cast<size_t>(t) * seq_ + u] /=
                        static_cast<float>(denom);
            }

            // Context = P V : (T x T) * (T x dh).
            std::vector<float> probs_head(
                p_base, p_base + static_cast<size_t>(seq_) * seq_);
            const std::vector<float> ctx_head = backend_->gemm(
                probs_head, vh, seq_, seq_, head_dim_, false, false);
            scatterHead(ctx_head, b, h, seq_, dim_, head_dim_, ctx_);
        }
    }

    // Output projection.
    const std::vector<float> wo_t = transposed(wo_.value.vec(), dim_, dim_);
    Tensor y({batch_, seq_, dim_});
    y.vec() = backend_->gemm(ctx_, wo_t, rows, dim_, dim_, false, false);
    return y;
}

Tensor
MultiHeadSelfAttention::backward(const Tensor &grad_out)
{
    const int rows = batch_ * seq_;
    MIRAGE_ASSERT(grad_out.size() == static_cast<int64_t>(rows) * dim_,
                  "MHSA backward shape mismatch");

    // d ctx = dY * Wo ; dWo = dY^T * ctx.
    std::vector<float> d_ctx = backend_->gemm(grad_out.vec(), wo_.value.vec(),
                                              rows, dim_, dim_, true, false);
    {
        const std::vector<float> dy_t =
            transposed(grad_out.vec(), rows, dim_);
        const std::vector<float> dwo =
            backend_->gemm(dy_t, ctx_, dim_, rows, dim_, true, false);
        for (int64_t i = 0; i < wo_.grad.size(); ++i)
            wo_.grad[i] += dwo[static_cast<size_t>(i)];
    }

    std::vector<float> dq(static_cast<size_t>(rows) * dim_, 0.0f);
    std::vector<float> dk(static_cast<size_t>(rows) * dim_, 0.0f);
    std::vector<float> dv(static_cast<size_t>(rows) * dim_, 0.0f);
    const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));

    std::vector<float> qh, kh, vh, d_ctx_h;
    for (int b = 0; b < batch_; ++b) {
        for (int h = 0; h < heads_; ++h) {
            sliceHead(q_, b, h, seq_, dim_, head_dim_, qh);
            sliceHead(k_, b, h, seq_, dim_, head_dim_, kh);
            sliceHead(v_, b, h, seq_, dim_, head_dim_, vh);
            sliceHead(d_ctx, b, h, seq_, dim_, head_dim_, d_ctx_h);
            const float *p_base =
                &probs_[((static_cast<size_t>(b) * heads_ + h) * seq_) * seq_];
            const std::vector<float> probs_head(
                p_base, p_base + static_cast<size_t>(seq_) * seq_);

            // dV = P^T * d_ctx : (T x T)^T * (T x dh).
            const std::vector<float> probs_t =
                transposed(probs_head, seq_, seq_);
            const std::vector<float> dv_head = backend_->gemm(
                probs_t, d_ctx_h, seq_, seq_, head_dim_, false, true);
            scatterHead(dv_head, b, h, seq_, dim_, head_dim_, dv);

            // dP = d_ctx * V^T : (T x dh) * (dh x T).
            const std::vector<float> vh_t = transposed(vh, seq_, head_dim_);
            std::vector<float> dp = backend_->gemm(d_ctx_h, vh_t, seq_,
                                                   head_dim_, seq_, true,
                                                   false);
            // Softmax backward: dS = P o (dP - rowsum(dP o P)).
            std::vector<float> ds(static_cast<size_t>(seq_) * seq_);
            for (int t = 0; t < seq_; ++t) {
                double dot = 0.0;
                for (int u = 0; u < seq_; ++u)
                    dot += dp[static_cast<size_t>(t) * seq_ + u] *
                           probs_head[static_cast<size_t>(t) * seq_ + u];
                for (int u = 0; u < seq_; ++u) {
                    const size_t idx = static_cast<size_t>(t) * seq_ + u;
                    ds[idx] = probs_head[idx] *
                              (dp[idx] - static_cast<float>(dot)) * inv_sqrt;
                }
            }

            // dQ = dS * K ; dK = dS^T * Q.
            const std::vector<float> dq_head =
                backend_->gemm(ds, kh, seq_, seq_, head_dim_, true, false);
            scatterHead(dq_head, b, h, seq_, dim_, head_dim_, dq);
            const std::vector<float> ds_t = transposed(ds, seq_, seq_);
            const std::vector<float> dk_head =
                backend_->gemm(ds_t, qh, seq_, seq_, head_dim_, true, false);
            scatterHead(dk_head, b, h, seq_, dim_, head_dim_, dk);
        }
    }

    // Back through the projections: dX accumulates from Q, K, V paths.
    Tensor grad_in({batch_, seq_, dim_});
    struct Path { const std::vector<float> *d; Param *w; };
    for (const Path &path : {Path{&dq, &wq_}, Path{&dk, &wk_}, Path{&dv, &wv_}}) {
        // dX += dProj * W.
        const std::vector<float> dx_part = backend_->gemm(
            *path.d, path.w->value.vec(), rows, dim_, dim_, true, false);
        for (int64_t i = 0; i < grad_in.size(); ++i)
            grad_in[i] += dx_part[static_cast<size_t>(i)];
        // dW = dProj^T * X.
        const std::vector<float> dproj_t = transposed(*path.d, rows, dim_);
        const std::vector<float> dw = backend_->gemm(
            dproj_t, cached_input_.vec(), dim_, rows, dim_, true, false);
        for (int64_t i = 0; i < path.w->grad.size(); ++i)
            path.w->grad[i] += dw[static_cast<size_t>(i)];
    }
    return grad_in;
}

std::vector<Param *>
MultiHeadSelfAttention::params()
{
    return {&wq_, &wk_, &wv_, &wo_};
}

} // namespace nn
} // namespace mirage
