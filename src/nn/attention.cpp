#include "nn/attention.h"

#include <cmath>

#include "common/logging.h"
#include "common/workspace.h"
#include "obs/fidelity.h"

namespace mirage {
namespace nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int dim, int heads,
                                               GemmBackend *backend, Rng &rng,
                                               bool causal)
    : dim_(dim), heads_(heads), head_dim_(dim / heads), backend_(backend),
      causal_(causal)
{
    MIRAGE_ASSERT(backend_ != nullptr, "MHSA needs a GEMM backend");
    if (dim % heads != 0)
        MIRAGE_FATAL("model dim ", dim, " not divisible by heads ", heads);
    const float scale = std::sqrt(1.0f / static_cast<float>(dim));
    for (Param *p : {&wq_, &wk_, &wv_, &wo_}) {
        p->value = Tensor::randn({dim_, dim_}, rng, scale);
        p->grad = Tensor::zeros({dim_, dim_});
    }
    wq_.name = "attn.wq";
    wk_.name = "attn.wk";
    wv_.name = "attn.wv";
    wo_.name = "attn.wo";
}

namespace {

/** Extracts head h of row-major [B*T, D] into [T, dh] for sample b. */
void
sliceHead(std::span<const float> src, int b, int h, int seq, int dim,
          int head_dim, std::span<float> dst)
{
    for (int t = 0; t < seq; ++t)
        for (int d = 0; d < head_dim; ++d)
            dst[static_cast<size_t>(t) * head_dim + d] =
                src[(static_cast<size_t>(b) * seq + t) * dim + h * head_dim +
                    d];
}

/** Adds [T, dh] back into head h of [B*T, D]. */
void
scatterHead(std::span<const float> src, int b, int h, int seq, int dim,
            int head_dim, std::span<float> dst)
{
    for (int t = 0; t < seq; ++t)
        for (int d = 0; d < head_dim; ++d)
            dst[(static_cast<size_t>(b) * seq + t) * dim + h * head_dim + d] +=
                src[static_cast<size_t>(t) * head_dim + d];
}

} // namespace

Tensor
MultiHeadSelfAttention::forward(const Tensor &x, bool /*training*/)
{
    MIRAGE_ASSERT(x.rank() == 3 && x.dim(2) == dim_,
                  "MHSA expects [B, T, ", dim_, "], got ", x.shapeString());
    obs::fidelity::LayerScope fidelity_scope("MHSA.fwd");
    cached_input_ = x;
    batch_ = x.dim(0);
    seq_ = x.dim(1);
    const int rows = batch_ * seq_;
    const size_t dd = static_cast<size_t>(dim_) * dim_;

    // Per-call scratch lives in this thread's arena; q_/k_/v_/probs_/ctx_
    // are members because backward consumes them (resize reuses capacity,
    // so steady-state steps do not touch the heap for them either).
    Workspace &ws = threadWorkspace();
    Workspace::Scope scope(ws);

    // Projections: (B*T x D) * (D x D).
    std::span<float> w_t = ws.alloc<float>(dd);
    q_.resize(static_cast<size_t>(rows) * dim_);
    k_.resize(static_cast<size_t>(rows) * dim_);
    v_.resize(static_cast<size_t>(rows) * dim_);
    transposeInto(wq_.value.vec(), dim_, dim_, w_t);
    backend_->gemm(x.vec(), w_t, rows, dim_, dim_, false, false, q_);
    transposeInto(wk_.value.vec(), dim_, dim_, w_t);
    backend_->gemm(x.vec(), w_t, rows, dim_, dim_, false, false, k_);
    transposeInto(wv_.value.vec(), dim_, dim_, w_t);
    backend_->gemm(x.vec(), w_t, rows, dim_, dim_, false, false, v_);

    probs_.assign(static_cast<size_t>(batch_) * heads_ * seq_ * seq_, 0.0f);
    ctx_.assign(static_cast<size_t>(rows) * dim_, 0.0f);
    const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));

    const size_t head_sz = static_cast<size_t>(seq_) * head_dim_;
    for (int b = 0; b < batch_; ++b) {
        for (int h = 0; h < heads_; ++h) {
            Workspace::Scope head_scope(ws);
            std::span<float> qh = ws.alloc<float>(head_sz);
            std::span<float> kh = ws.alloc<float>(head_sz);
            std::span<float> vh = ws.alloc<float>(head_sz);
            sliceHead(q_, b, h, seq_, dim_, head_dim_, qh);
            sliceHead(k_, b, h, seq_, dim_, head_dim_, kh);
            sliceHead(v_, b, h, seq_, dim_, head_dim_, vh);

            // Scores = Q K^T / sqrt(dh): (T x dh) * (dh x T).
            std::span<float> kh_t = ws.alloc<float>(head_sz);
            transposeInto(kh, seq_, head_dim_, kh_t);
            std::span<float> scores =
                ws.alloc<float>(static_cast<size_t>(seq_) * seq_);
            backend_->gemm(qh, kh_t, seq_, head_dim_, seq_, false, false,
                           scores);
            // Row softmax (FP32, like all nonlinearities in the paper).
            float *p_base =
                &probs_[((static_cast<size_t>(b) * heads_ + h) * seq_) * seq_];
            for (int t = 0; t < seq_; ++t) {
                // Causal masking restricts row t to positions u <= t; the
                // masked probabilities stay exactly zero, so the backward
                // pass needs no special casing (P = 0 kills dS there).
                const int u_lim = causal_ ? t + 1 : seq_;
                float max_v = -1e30f;
                for (int u = 0; u < u_lim; ++u)
                    max_v = std::max(max_v,
                                     scores[static_cast<size_t>(t) * seq_ + u] *
                                         inv_sqrt);
                double denom = 0.0;
                for (int u = 0; u < u_lim; ++u) {
                    const float e = std::exp(
                        scores[static_cast<size_t>(t) * seq_ + u] * inv_sqrt -
                        max_v);
                    p_base[static_cast<size_t>(t) * seq_ + u] = e;
                    denom += e;
                }
                for (int u = 0; u < u_lim; ++u)
                    p_base[static_cast<size_t>(t) * seq_ + u] /=
                        static_cast<float>(denom);
            }

            // Context = P V : (T x T) * (T x dh). P is read in place from
            // the member buffer — no per-head copy.
            const std::span<const float> probs_head(
                p_base, static_cast<size_t>(seq_) * seq_);
            std::span<float> ctx_head = ws.alloc<float>(head_sz);
            backend_->gemm(probs_head, vh, seq_, seq_, head_dim_, false,
                           false, ctx_head);
            scatterHead(ctx_head, b, h, seq_, dim_, head_dim_, ctx_);
        }
    }

    // Output projection.
    transposeInto(wo_.value.vec(), dim_, dim_, w_t);
    Tensor y({batch_, seq_, dim_});
    backend_->gemm(ctx_, w_t, rows, dim_, dim_, false, false, y.vec());
    return y;
}

Tensor
MultiHeadSelfAttention::backward(const Tensor &grad_out)
{
    obs::fidelity::LayerScope fidelity_scope("MHSA.bwd");
    const int rows = batch_ * seq_;
    MIRAGE_ASSERT(grad_out.size() == static_cast<int64_t>(rows) * dim_,
                  "MHSA backward shape mismatch");
    const size_t dd = static_cast<size_t>(dim_) * dim_;
    const size_t rd = static_cast<size_t>(rows) * dim_;

    Workspace &ws = threadWorkspace();
    Workspace::Scope scope(ws);

    // d ctx = dY * Wo ; dWo = dY^T * ctx.
    std::span<float> d_ctx = ws.alloc<float>(rd);
    backend_->gemm(grad_out.vec(), wo_.value.vec(), rows, dim_, dim_, true,
                   false, d_ctx);
    {
        Workspace::Scope proj_scope(ws);
        std::span<float> dy_t = ws.alloc<float>(rd);
        transposeInto(grad_out.vec(), rows, dim_, dy_t);
        std::span<float> dwo = ws.alloc<float>(dd);
        backend_->gemm(dy_t, ctx_, dim_, rows, dim_, true, false, dwo);
        for (int64_t i = 0; i < wo_.grad.size(); ++i)
            wo_.grad[i] += dwo[static_cast<size_t>(i)];
    }

    std::span<float> dq = ws.zeroed<float>(rd);
    std::span<float> dk = ws.zeroed<float>(rd);
    std::span<float> dv = ws.zeroed<float>(rd);
    const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));

    const size_t head_sz = static_cast<size_t>(seq_) * head_dim_;
    const size_t tt = static_cast<size_t>(seq_) * seq_;
    for (int b = 0; b < batch_; ++b) {
        for (int h = 0; h < heads_; ++h) {
            Workspace::Scope head_scope(ws);
            std::span<float> qh = ws.alloc<float>(head_sz);
            std::span<float> kh = ws.alloc<float>(head_sz);
            std::span<float> vh = ws.alloc<float>(head_sz);
            std::span<float> d_ctx_h = ws.alloc<float>(head_sz);
            sliceHead(q_, b, h, seq_, dim_, head_dim_, qh);
            sliceHead(k_, b, h, seq_, dim_, head_dim_, kh);
            sliceHead(v_, b, h, seq_, dim_, head_dim_, vh);
            sliceHead(d_ctx, b, h, seq_, dim_, head_dim_, d_ctx_h);
            const std::span<const float> probs_head(
                &probs_[((static_cast<size_t>(b) * heads_ + h) * seq_) *
                        seq_],
                tt);

            // dV = P^T * d_ctx : (T x T)^T * (T x dh).
            std::span<float> probs_t = ws.alloc<float>(tt);
            transposeInto(probs_head, seq_, seq_, probs_t);
            std::span<float> dv_head = ws.alloc<float>(head_sz);
            backend_->gemm(probs_t, d_ctx_h, seq_, seq_, head_dim_, false,
                           true, dv_head);
            scatterHead(dv_head, b, h, seq_, dim_, head_dim_, dv);

            // dP = d_ctx * V^T : (T x dh) * (dh x T).
            std::span<float> vh_t = ws.alloc<float>(head_sz);
            transposeInto(vh, seq_, head_dim_, vh_t);
            std::span<float> dp = ws.alloc<float>(tt);
            backend_->gemm(d_ctx_h, vh_t, seq_, head_dim_, seq_, true, false,
                           dp);
            // Softmax backward: dS = P o (dP - rowsum(dP o P)).
            std::span<float> ds = ws.alloc<float>(tt);
            for (int t = 0; t < seq_; ++t) {
                double dot = 0.0;
                for (int u = 0; u < seq_; ++u)
                    dot += dp[static_cast<size_t>(t) * seq_ + u] *
                           probs_head[static_cast<size_t>(t) * seq_ + u];
                for (int u = 0; u < seq_; ++u) {
                    const size_t idx = static_cast<size_t>(t) * seq_ + u;
                    ds[idx] = probs_head[idx] *
                              (dp[idx] - static_cast<float>(dot)) * inv_sqrt;
                }
            }

            // dQ = dS * K ; dK = dS^T * Q.
            std::span<float> dq_head = ws.alloc<float>(head_sz);
            backend_->gemm(ds, kh, seq_, seq_, head_dim_, true, false,
                           dq_head);
            scatterHead(dq_head, b, h, seq_, dim_, head_dim_, dq);
            std::span<float> ds_t = ws.alloc<float>(tt);
            transposeInto(ds, seq_, seq_, ds_t);
            std::span<float> dk_head = ws.alloc<float>(head_sz);
            backend_->gemm(ds_t, qh, seq_, seq_, head_dim_, true, false,
                           dk_head);
            scatterHead(dk_head, b, h, seq_, dim_, head_dim_, dk);
        }
    }

    // Back through the projections: dX accumulates from Q, K, V paths.
    Tensor grad_in({batch_, seq_, dim_});
    struct Path { std::span<const float> d; Param *w; };
    for (const Path &path : {Path{dq, &wq_}, Path{dk, &wk_}, Path{dv, &wv_}}) {
        Workspace::Scope path_scope(ws);
        // dX += dProj * W.
        std::span<float> dx_part = ws.alloc<float>(rd);
        backend_->gemm(path.d, path.w->value.vec(), rows, dim_, dim_, true,
                       false, dx_part);
        for (int64_t i = 0; i < grad_in.size(); ++i)
            grad_in[i] += dx_part[static_cast<size_t>(i)];
        // dW = dProj^T * X.
        std::span<float> dproj_t = ws.alloc<float>(rd);
        transposeInto(path.d, rows, dim_, dproj_t);
        std::span<float> dw = ws.alloc<float>(dd);
        backend_->gemm(dproj_t, cached_input_.vec(), dim_, rows, dim_, true,
                       false, dw);
        for (int64_t i = 0; i < path.w->grad.size(); ++i)
            path.w->grad[i] += dw[static_cast<size_t>(i)];
    }
    return grad_in;
}

std::vector<Param *>
MultiHeadSelfAttention::params()
{
    return {&wq_, &wk_, &wv_, &wo_};
}

} // namespace nn
} // namespace mirage
