#ifndef MIRAGE_NN_GEMM_BACKEND_H
#define MIRAGE_NN_GEMM_BACKEND_H

/**
 * @file
 * The GEMM backend abstraction: every layer routes its forward and backward
 * matrix products through one of these, which is how the Table I accuracy
 * harness swaps data formats (paper Sec. V-A) and how the functional
 * photonic pipeline can execute real training GEMMs end to end.
 */

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "numerics/quantized_gemm.h"
#include "obs/fidelity.h"
#include "photonic/mmvmu.h"

namespace mirage {
namespace nn {

/**
 * Abstract GEMM executor: C[m x n] = A[m x k] * B[k x n], row-major.
 *
 * Threading contract: a backend instance supports ONE caller at a time
 * (backends hold mutable state — an Rng stream, photonic array stats).
 * Internally every implementation parallelizes its hot loops over the
 * global runtime::ThreadPool (rows, moduli, MDPU channels), so layers and
 * models speed up transparently with the pool's thread count while staying
 * bit-identical to serial execution (see runtime/thread_pool.h). For
 * concurrent callers, give each its own backend — e.g. one accelerator
 * tile per runtime::RuntimeEngine worker.
 */
class GemmBackend
{
  public:
    virtual ~GemmBackend() = default;

    /** Backend name for reports. */
    virtual std::string name() const = 0;

    /**
     * Executes the GEMM into caller-provided storage (`out` has m*n
     * elements). `a_is_grad` / `b_is_grad` mark loss-gradient operands
     * (HFP8 switches to its wide-range backward format for them).
     *
     * This is the hot-path entry point: implementations draw their scratch
     * from Workspace arenas and perform no heap allocation once warm, so
     * layers that keep `out` in reused storage get allocation-free steps.
     */
    virtual void gemm(std::span<const float> a, std::span<const float> b,
                      int m, int k, int n, bool a_is_grad, bool b_is_grad,
                      std::span<float> out) = 0;

    /**
     * Allocating convenience wrapper over the span overload; bit-identical
     * results.
     */
    std::vector<float>
    gemm(const std::vector<float> &a, const std::vector<float> &b, int m,
         int k, int n, bool a_is_grad, bool b_is_grad)
    {
        std::vector<float> c(static_cast<size_t>(m) * n);
        gemm(std::span<const float>(a), std::span<const float>(b), m, k, n,
             a_is_grad, b_is_grad, c);
        return c;
    }
};

/** Value-level emulation backend for any paper data format. */
class FormatBackend : public GemmBackend
{
  public:
    FormatBackend(numerics::DataFormat format,
                  numerics::FormatGemmConfig cfg = {}, uint64_t seed = 1);

    std::string name() const override;
    using GemmBackend::gemm;
    void gemm(std::span<const float> a, std::span<const float> b, int m,
              int k, int n, bool a_is_grad, bool b_is_grad,
              std::span<float> out) override;

    numerics::DataFormat format() const { return format_; }

  private:
    numerics::DataFormat format_;
    numerics::FormatGemmConfig cfg_;
    Rng rng_;
    /// Shadow-execution sampler (MIRAGE_FIDELITY): sampled calls re-run on
    /// the FP32 reference for per-layer error telemetry. Deterministic per
    /// instance (counts this backend's call sequence) and compare-only.
    obs::fidelity::ProbeSampler probe_;
};

/**
 * Functional photonic backend: BFP-encodes the operands and executes every
 * chunk dot product on a simulated RNS-MMVMU (phase accumulation + I/Q
 * detection), with optional noise injection. Orders of magnitude slower
 * than FormatBackend — intended for small end-to-end demonstrations and
 * equivalence tests, exactly like running on the real chip would be.
 */
class PhotonicBackend : public GemmBackend
{
  public:
    /**
     * @param cfg_bm,cfg_g BFP parameters (paper defaults 4, 16).
     * @param moduli_k     special moduli set parameter.
     * @param rows         MDPU rows per simulated MMVMU.
     * @param noise        imperfection injection for the photonic pipeline.
     * @param seed         RNG seed for rounding/noise.
     */
    PhotonicBackend(int cfg_bm, int cfg_g, int moduli_k, int rows,
                    photonic::PhotonicNoiseConfig noise = {},
                    uint64_t seed = 1);

    std::string name() const override;
    using GemmBackend::gemm;
    void gemm(std::span<const float> a, std::span<const float> b, int m,
              int k, int n, bool a_is_grad, bool b_is_grad,
              std::span<float> out) override;

    /** The simulated array (stats, link budgets). */
    const photonic::RnsMmvmu &array() const { return array_; }

  private:
    bfp::BfpConfig bfp_cfg_;
    photonic::RnsMmvmu array_;
    Rng rng_;
    bool noisy_;
    /// Shadow-execution sampler (see FormatBackend::probe_).
    obs::fidelity::ProbeSampler probe_;
};

/** Convenience factory: a backend for any format, photonic or emulated. */
std::unique_ptr<GemmBackend> makeFormatBackend(numerics::DataFormat format,
                                               uint64_t seed = 1);

} // namespace nn
} // namespace mirage

#endif // MIRAGE_NN_GEMM_BACKEND_H
