#ifndef MIRAGE_NN_TENSOR_H
#define MIRAGE_NN_TENSOR_H

/**
 * @file
 * Minimal dense FP32 tensor for the training framework: contiguous
 * row-major storage with shape metadata. The framework keeps master
 * weights in FP32 (paper Sec. III step 10 / V-A); all quantization happens
 * inside the GEMM backends.
 */

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace mirage {
namespace nn {

/** Dense row-major FP32 tensor. */
class Tensor
{
  public:
    Tensor() = default;

    /** Allocates a zero-filled tensor of the given shape. */
    explicit Tensor(std::vector<int> shape);

    /** Zero tensor helper. */
    static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

    /** I.i.d. Gaussian tensor (used by initializers). */
    static Tensor randn(std::vector<int> shape, Rng &rng, float stddev = 1.0f);

    const std::vector<int> &shape() const { return shape_; }
    int dim(size_t i) const;
    size_t rank() const { return shape_.size(); }
    int64_t size() const { return static_cast<int64_t>(data_.size()); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }
    std::vector<float> &vec() { return data_; }
    const std::vector<float> &vec() const { return data_; }

    float &operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
    float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

    /** Sets every element. */
    void fill(float v);

    /** Returns a copy with a new shape of identical element count. */
    Tensor reshaped(std::vector<int> new_shape) const;

    /** Element count implied by a shape vector. */
    static int64_t elementCount(const std::vector<int> &shape);

    /** Human-readable shape, e.g. "[32, 3, 16, 16]". */
    std::string shapeString() const;

  private:
    std::vector<int> shape_;
    std::vector<float> data_;
};

/** C = A * B with A (m x k) and B (k x n), plain FP32 (no backend). */
std::vector<float> matmulFp32(const std::vector<float> &a,
                              const std::vector<float> &b, int m, int k, int n);

/** Row-major transpose: input (rows x cols) -> output (cols x rows). */
std::vector<float> transposed(const std::vector<float> &a, int rows, int cols);

/**
 * Transpose into caller storage (size rows * cols) — the allocation-free
 * variant used by layer hot paths with Workspace scratch as destination.
 */
void transposeInto(std::span<const float> a, int rows, int cols,
                   std::span<float> out);

} // namespace nn
} // namespace mirage

#endif // MIRAGE_NN_TENSOR_H
