#ifndef MIRAGE_NN_LAYER_H
#define MIRAGE_NN_LAYER_H

/**
 * @file
 * Layer framework with explicit forward/backward methods (no tape): each
 * layer caches what its backward pass needs. All GEMM-bearing layers take a
 * non-owning GemmBackend pointer, so one model definition trains under any
 * data format — the paper's Table I methodology.
 */

#include <memory>
#include <string>
#include <vector>

#include "nn/gemm_backend.h"
#include "nn/tensor.h"

namespace mirage {
namespace nn {

/** A trainable parameter with its gradient accumulator. */
struct Param
{
    std::string name;
    Tensor value;
    Tensor grad;

    /** Zeroes the gradient. */
    void zeroGrad() { grad.fill(0.0f); }
};

/** A parameter together with its unique path inside a model tree. */
struct NamedParam
{
    std::string path; ///< e.g. "l3.dense.weight" in a Sequential.
    Param *param = nullptr;
};

/** Base class for all layers. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Layer name for reports. */
    virtual std::string name() const = 0;

    /**
     * Forward pass. `training` toggles behaviours like batch-norm statistics
     * updates.
     */
    virtual Tensor forward(const Tensor &x, bool training) = 0;

    /** Backward pass: consumes dL/d(output), returns dL/d(input). */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** Trainable parameters (empty for stateless layers). */
    virtual std::vector<Param *> params() { return {}; }

    /**
     * Appends this layer's parameters to `out` with `prefix`-qualified
     * paths. Containers (Sequential, ResidualBlock) override this to
     * recurse with position-derived prefixes, so every parameter of a
     * model tree gets a unique, structure-stable path — the identity the
     * serve/ checkpoint format keys tensors by.
     */
    virtual void
    appendNamedParams(const std::string &prefix, std::vector<NamedParam> &out)
    {
        for (Param *p : params())
            out.push_back({prefix + p->name, p});
    }

    /** All parameters of this (sub)tree with unique paths. */
    std::vector<NamedParam>
    namedParams()
    {
        std::vector<NamedParam> out;
        appendNamedParams("", out);
        return out;
    }
};

} // namespace nn
} // namespace mirage

#endif // MIRAGE_NN_LAYER_H
