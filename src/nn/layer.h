#ifndef MIRAGE_NN_LAYER_H
#define MIRAGE_NN_LAYER_H

/**
 * @file
 * Layer framework with explicit forward/backward methods (no tape): each
 * layer caches what its backward pass needs. All GEMM-bearing layers take a
 * non-owning GemmBackend pointer, so one model definition trains under any
 * data format — the paper's Table I methodology.
 */

#include <memory>
#include <string>
#include <vector>

#include "nn/gemm_backend.h"
#include "nn/tensor.h"

namespace mirage {
namespace nn {

/** A trainable parameter with its gradient accumulator. */
struct Param
{
    std::string name;
    Tensor value;
    Tensor grad;

    /** Zeroes the gradient. */
    void zeroGrad() { grad.fill(0.0f); }
};

/** Base class for all layers. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Layer name for reports. */
    virtual std::string name() const = 0;

    /**
     * Forward pass. `training` toggles behaviours like batch-norm statistics
     * updates.
     */
    virtual Tensor forward(const Tensor &x, bool training) = 0;

    /** Backward pass: consumes dL/d(output), returns dL/d(input). */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** Trainable parameters (empty for stateless layers). */
    virtual std::vector<Param *> params() { return {}; }
};

} // namespace nn
} // namespace mirage

#endif // MIRAGE_NN_LAYER_H
