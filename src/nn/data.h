#ifndef MIRAGE_NN_DATA_H
#define MIRAGE_NN_DATA_H

/**
 * @file
 * Synthetic dataset generators — the stand-ins for ImageNet/VOC/IWSLT
 * (see DESIGN.md, substitutions). Each generator is deterministic under a
 * seed and produces train/test splits whose difficulty is tuned so that
 * numerical-precision differences between data formats are visible in the
 * final accuracy, which is what Table I and Fig. 5a measure.
 */

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace mirage {
namespace nn {

/** A labelled dataset: inputs[0] is the batch dimension. */
struct Dataset
{
    Tensor inputs;
    std::vector<int> labels;
    int num_classes = 0;

    int size() const { return inputs.dim(0); }

    /** Copies rows [begin, begin+count) into a batch tensor + labels. */
    Dataset slice(int begin, int count) const;
};

/**
 * Gaussian cluster classification in `dim` dimensions: `classes` unit-norm
 * centers with additive noise; `margin` scales center separation (smaller
 * = harder, more precision-sensitive).
 */
Dataset makeGaussianClusters(int samples, int classes, int dim, float margin,
                             uint64_t seed);

/**
 * Synthetic pattern images [B, 1, size, size]: each class is an oriented
 * sinusoidal grating with per-sample phase jitter, amplitude jitter and
 * additive noise — a procedurally generated stand-in for natural-image
 * classification that requires learning oriented filters.
 */
Dataset makePatternImages(int samples, int classes, int size, float noise,
                          uint64_t seed);

/**
 * Synthetic token sequences for the transformer benchmark: inputs are
 * one-hot-embedded token ids [B, T, vocab]; the label is the majority
 * token class — solvable only by aggregating information across the whole
 * sequence (what attention is for).
 */
Dataset makeMajoritySequences(int samples, int classes, int seq_len,
                              uint64_t seed);

} // namespace nn
} // namespace mirage

#endif // MIRAGE_NN_DATA_H
