#ifndef MIRAGE_NN_DATA_H
#define MIRAGE_NN_DATA_H

/**
 * @file
 * Synthetic dataset generators — the stand-ins for ImageNet/VOC/IWSLT
 * (see DESIGN.md, substitutions). Each generator is deterministic under a
 * seed and produces train/test splits whose difficulty is tuned so that
 * numerical-precision differences between data formats are visible in the
 * final accuracy, which is what Table I and Fig. 5a measure.
 */

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace mirage {
namespace nn {

/** A labelled dataset: inputs[0] is the batch dimension. */
struct Dataset
{
    Tensor inputs;
    std::vector<int> labels;
    int num_classes = 0;

    int size() const { return inputs.dim(0); }

    /** Copies rows [begin, begin+count) into a batch tensor + labels. */
    Dataset slice(int begin, int count) const;
};

/**
 * Gaussian cluster classification in `dim` dimensions: `classes` unit-norm
 * centers with additive noise; `margin` scales center separation (smaller
 * = harder, more precision-sensitive).
 */
Dataset makeGaussianClusters(int samples, int classes, int dim, float margin,
                             uint64_t seed);

/**
 * Synthetic pattern images [B, 1, size, size]: each class is an oriented
 * sinusoidal grating with per-sample phase jitter, amplitude jitter and
 * additive noise — a procedurally generated stand-in for natural-image
 * classification that requires learning oriented filters.
 */
Dataset makePatternImages(int samples, int classes, int size, float noise,
                          uint64_t seed);

/**
 * Synthetic token sequences for the transformer benchmark: inputs are
 * one-hot-embedded token ids [B, T, vocab]; the label is the majority
 * token class — solvable only by aggregating information across the whole
 * sequence (what attention is for).
 */
Dataset makeMajoritySequences(int samples, int classes, int seq_len,
                              uint64_t seed);

/**
 * Seeded, epoch-deterministic mini-batch iterator.
 *
 * Epoch e draws its shuffle from Rng::stream(seed, e) — a pure function of
 * (seed, epoch), never of how much of a previous epoch was consumed — so
 * the sample order of any epoch can be reconstructed from (seed, epoch,
 * cursor) alone. That property is what makes mid-epoch checkpoint-resume
 * and replica sharding exact: every consumer that agrees on (seed, epoch)
 * sees the same batches, and batch b of an epoch can be fetched at random
 * access by any replica.
 *
 * With drop_last (the train/ default) every batch has exactly batch_size
 * rows and the ragged tail of the epoch is skipped; without it the final
 * batch is smaller (the classic eval/trainClassifier semantics).
 */
class BatchIterator
{
  public:
    /**
     * @param data       dataset iterated over (borrowed; must outlive the
     *                   iterator).
     * @param batch_size rows per batch (>= 1).
     * @param seed       base seed; epoch e shuffles with Rng::stream(seed, e).
     * @param shuffle    false: identity order every epoch.
     * @param drop_last  true: only full batches, ragged tail skipped.
     */
    BatchIterator(const Dataset &data, int batch_size, uint64_t seed,
                  bool shuffle = true, bool drop_last = false);

    /** Batches in one epoch (floor with drop_last, else ceil). */
    int64_t batchesPerEpoch() const;

    /** Re-shuffles for `epoch` and rewinds the cursor to batch 0. */
    void setEpoch(int64_t epoch);

    int64_t epoch() const { return epoch_; }

    /** Next batch index the sequential next() will produce. */
    int64_t cursor() const { return cursor_; }

    /** Repositions the sequential cursor (checkpoint-resume). */
    void setCursor(int64_t batch_index);

    /**
     * Copies the next batch of the current epoch into `out`; false (and
     * `out` untouched) once the epoch is exhausted.
     */
    bool next(Dataset &out);

    /** Random-access copy of batch `index` of the current epoch. */
    Dataset batch(int64_t index) const;

    /**
     * batch() into caller storage: when `out` already has the right
     * shape (the steady state of a training loop reusing one scratch
     * Dataset per replica) no heap allocation happens.
     */
    void batchInto(int64_t index, Dataset &out) const;

    /**
     * Dataset row indices making up batch `index` — the identity the
     * replica-sharding tests partition-check against.
     */
    std::vector<int> batchIndices(int64_t index) const;

    int batchSize() const { return batch_size_; }
    uint64_t seed() const { return seed_; }

  private:
    const Dataset *data_;
    int batch_size_;
    uint64_t seed_;
    bool shuffle_;
    bool drop_last_;
    int64_t epoch_ = 0;
    int64_t cursor_ = 0;
    std::vector<int> order_; ///< Sample order of the current epoch.
};

} // namespace nn
} // namespace mirage

#endif // MIRAGE_NN_DATA_H
