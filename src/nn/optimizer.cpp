#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace mirage {
namespace nn {

void
Optimizer::zeroGrad(const std::vector<Param *> &params)
{
    for (Param *p : params)
        p->zeroGrad();
}

Sgd::Sgd(float lr, float momentum, float weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay)
{
    MIRAGE_ASSERT(lr > 0, "learning rate must be positive");
}

void
Sgd::step(const std::vector<Param *> &params)
{
    for (Param *p : params) {
        auto &vel = velocity_[p];
        if (momentum_ != 0.0f && vel.empty())
            vel.assign(static_cast<size_t>(p->value.size()), 0.0f);
        for (int64_t i = 0; i < p->value.size(); ++i) {
            float g = p->grad[i] + weight_decay_ * p->value[i];
            if (momentum_ != 0.0f) {
                vel[static_cast<size_t>(i)] =
                    momentum_ * vel[static_cast<size_t>(i)] + g;
                g = vel[static_cast<size_t>(i)];
            }
            p->value[i] -= lr_ * g;
        }
    }
}

std::vector<std::string>
Sgd::stateSlots() const
{
    return momentum_ != 0.0f ? std::vector<std::string>{"velocity"}
                             : std::vector<std::string>{};
}

std::vector<float>
Sgd::stateSlot(const Param *p, const std::string &slot) const
{
    MIRAGE_ASSERT(slot == "velocity", "unknown SGD state slot: ", slot);
    const auto it = velocity_.find(const_cast<Param *>(p));
    return it != velocity_.end() ? it->second : std::vector<float>{};
}

void
Sgd::setStateSlot(Param *p, const std::string &slot, std::vector<float> data)
{
    MIRAGE_ASSERT(slot == "velocity", "unknown SGD state slot: ", slot);
    MIRAGE_ASSERT(data.size() == static_cast<size_t>(p->value.size()),
                  "SGD velocity size mismatch for ", p->name);
    velocity_[p] = std::move(data);
}

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
{
    MIRAGE_ASSERT(lr > 0, "learning rate must be positive");
}

void
Adam::step(const std::vector<Param *> &params)
{
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (Param *p : params) {
        auto &m = m_[p];
        auto &v = v_[p];
        if (m.empty()) {
            m.assign(static_cast<size_t>(p->value.size()), 0.0f);
            v.assign(static_cast<size_t>(p->value.size()), 0.0f);
        }
        for (int64_t i = 0; i < p->value.size(); ++i) {
            const float g = p->grad[i];
            const size_t si = static_cast<size_t>(i);
            m[si] = beta1_ * m[si] + (1.0f - beta1_) * g;
            v[si] = beta2_ * v[si] + (1.0f - beta2_) * g * g;
            const double mhat = m[si] / bc1;
            const double vhat = v[si] / bc2;
            p->value[i] -= static_cast<float>(
                lr_ * mhat / (std::sqrt(vhat) + eps_));
        }
    }
}

std::vector<std::string>
Adam::stateSlots() const
{
    return {"m", "v"};
}

std::vector<float>
Adam::stateSlot(const Param *p, const std::string &slot) const
{
    MIRAGE_ASSERT(slot == "m" || slot == "v",
                  "unknown Adam state slot: ", slot);
    const auto &map = slot == "m" ? m_ : v_;
    const auto it = map.find(const_cast<Param *>(p));
    return it != map.end() ? it->second : std::vector<float>{};
}

void
Adam::setStateSlot(Param *p, const std::string &slot, std::vector<float> data)
{
    MIRAGE_ASSERT(slot == "m" || slot == "v",
                  "unknown Adam state slot: ", slot);
    MIRAGE_ASSERT(data.size() == static_cast<size_t>(p->value.size()),
                  "Adam ", slot, " size mismatch for ", p->name);
    (slot == "m" ? m_ : v_)[p] = std::move(data);
}

} // namespace nn
} // namespace mirage
