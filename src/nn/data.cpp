#include "nn/data.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/units.h"

namespace mirage {
namespace nn {

Dataset
Dataset::slice(int begin, int count) const
{
    MIRAGE_ASSERT(begin >= 0 && begin + count <= size(),
                  "slice out of range");
    std::vector<int> shape = inputs.shape();
    shape[0] = count;
    Dataset out;
    out.inputs = Tensor(shape);
    out.num_classes = num_classes;
    const int64_t row = inputs.size() / size();
    for (int i = 0; i < count; ++i) {
        for (int64_t j = 0; j < row; ++j)
            out.inputs[static_cast<int64_t>(i) * row + j] =
                inputs[static_cast<int64_t>(begin + i) * row + j];
        out.labels.push_back(labels[static_cast<size_t>(begin + i)]);
    }
    return out;
}

Dataset
makeGaussianClusters(int samples, int classes, int dim, float margin,
                     uint64_t seed)
{
    MIRAGE_ASSERT(samples > 0 && classes >= 2 && dim >= 2, "bad dataset spec");
    Rng rng(seed);

    // Random unit centers scaled by the margin.
    std::vector<float> centers(static_cast<size_t>(classes) * dim);
    for (int c = 0; c < classes; ++c) {
        double norm = 0.0;
        for (int d = 0; d < dim; ++d) {
            const double v = rng.gaussian();
            centers[static_cast<size_t>(c) * dim + d] = static_cast<float>(v);
            norm += v * v;
        }
        norm = std::sqrt(norm);
        for (int d = 0; d < dim; ++d)
            centers[static_cast<size_t>(c) * dim + d] *=
                margin / static_cast<float>(norm);
    }

    Dataset ds;
    ds.inputs = Tensor({samples, dim});
    ds.num_classes = classes;
    ds.labels.resize(static_cast<size_t>(samples));
    for (int i = 0; i < samples; ++i) {
        const int c = static_cast<int>(rng.uniformInt(0, classes - 1));
        ds.labels[static_cast<size_t>(i)] = c;
        for (int d = 0; d < dim; ++d) {
            ds.inputs[static_cast<int64_t>(i) * dim + d] =
                centers[static_cast<size_t>(c) * dim + d] +
                static_cast<float>(rng.gaussian(0.0, 1.0));
        }
    }
    return ds;
}

Dataset
makePatternImages(int samples, int classes, int size, float noise,
                  uint64_t seed)
{
    MIRAGE_ASSERT(samples > 0 && classes >= 2 && size >= 4, "bad dataset spec");
    Rng rng(seed);
    Dataset ds;
    ds.inputs = Tensor({samples, 1, size, size});
    ds.num_classes = classes;
    ds.labels.resize(static_cast<size_t>(samples));

    const int64_t plane = static_cast<int64_t>(size) * size;
    for (int i = 0; i < samples; ++i) {
        const int c = static_cast<int>(rng.uniformInt(0, classes - 1));
        ds.labels[static_cast<size_t>(i)] = c;
        // Class determines grating orientation and frequency.
        const double angle = units::kPi * c / classes;
        const double freq =
            2.0 * units::kPi * (1.0 + (c % 3)) / static_cast<double>(size);
        const double phase = rng.uniformReal(0.0, 2.0 * units::kPi);
        const double amp = 0.6 + 0.4 * rng.uniformReal();
        const double cos_a = std::cos(angle), sin_a = std::sin(angle);
        for (int y = 0; y < size; ++y) {
            for (int x = 0; x < size; ++x) {
                const double proj = cos_a * x + sin_a * y;
                const double v = amp * std::sin(freq * proj + phase) +
                                 rng.gaussian(0.0, noise);
                ds.inputs[static_cast<int64_t>(i) * plane + y * size + x] =
                    static_cast<float>(v);
            }
        }
    }
    return ds;
}

Dataset
makeMajoritySequences(int samples, int classes, int seq_len, uint64_t seed)
{
    MIRAGE_ASSERT(samples > 0 && classes >= 2 && seq_len >= classes,
                  "bad dataset spec");
    Rng rng(seed);
    Dataset ds;
    // One-hot embedding: [B, T, classes].
    ds.inputs = Tensor({samples, seq_len, classes});
    ds.num_classes = classes;
    ds.labels.resize(static_cast<size_t>(samples));

    std::vector<int> counts(static_cast<size_t>(classes));
    for (int i = 0; i < samples; ++i) {
        std::fill(counts.begin(), counts.end(), 0);
        // Draw tokens, bias one class to guarantee a unique majority.
        const int majority = static_cast<int>(rng.uniformInt(0, classes - 1));
        for (int t = 0; t < seq_len; ++t) {
            int tok;
            if (rng.uniformReal() < 0.45) {
                tok = majority;
            } else {
                tok = static_cast<int>(rng.uniformInt(0, classes - 1));
            }
            ++counts[static_cast<size_t>(tok)];
            ds.inputs[(static_cast<int64_t>(i) * seq_len + t) * classes +
                      tok] = 1.0f;
        }
        // The true label is the realized majority (ties broken low).
        int best = 0;
        for (int c = 1; c < classes; ++c)
            if (counts[static_cast<size_t>(c)] >
                counts[static_cast<size_t>(best)])
                best = c;
        ds.labels[static_cast<size_t>(i)] = best;
    }
    return ds;
}

BatchIterator::BatchIterator(const Dataset &data, int batch_size,
                             uint64_t seed, bool shuffle, bool drop_last)
    : data_(&data), batch_size_(batch_size), seed_(seed), shuffle_(shuffle),
      drop_last_(drop_last)
{
    MIRAGE_ASSERT(batch_size_ >= 1, "batch_size must be >= 1");
    MIRAGE_ASSERT(data.size() >= 1, "cannot iterate an empty dataset");
    setEpoch(0);
}

int64_t
BatchIterator::batchesPerEpoch() const
{
    const int64_t n = data_->size();
    return drop_last_ ? n / batch_size_
                      : (n + batch_size_ - 1) / batch_size_;
}

void
BatchIterator::setEpoch(int64_t epoch)
{
    epoch_ = epoch;
    cursor_ = 0;
    order_.resize(static_cast<size_t>(data_->size()));
    std::iota(order_.begin(), order_.end(), 0);
    if (shuffle_) {
        // Rng::stream: the shuffle is a function of (seed, epoch) only, so
        // epochs can be replayed out of order (resume) and never depend on
        // how much of an earlier epoch was consumed.
        Rng rng = Rng::stream(seed_, static_cast<uint64_t>(epoch));
        std::shuffle(order_.begin(), order_.end(), rng.engine());
    }
}

void
BatchIterator::setCursor(int64_t batch_index)
{
    MIRAGE_ASSERT(batch_index >= 0 && batch_index <= batchesPerEpoch(),
                  "cursor ", batch_index, " outside epoch of ",
                  batchesPerEpoch(), " batches");
    cursor_ = batch_index;
}

bool
BatchIterator::next(Dataset &out)
{
    if (cursor_ >= batchesPerEpoch())
        return false;
    batchInto(cursor_, out); // reuses out's buffers in the steady state
    ++cursor_;
    return true;
}

std::vector<int>
BatchIterator::batchIndices(int64_t index) const
{
    MIRAGE_ASSERT(index >= 0 && index < batchesPerEpoch(),
                  "batch index ", index, " outside epoch of ",
                  batchesPerEpoch(), " batches");
    const int64_t begin = index * batch_size_;
    const int64_t end =
        std::min<int64_t>(begin + batch_size_, data_->size());
    return std::vector<int>(order_.begin() + begin, order_.begin() + end);
}

Dataset
BatchIterator::batch(int64_t index) const
{
    Dataset out;
    batchInto(index, out);
    return out;
}

void
BatchIterator::batchInto(int64_t index, Dataset &out) const
{
    MIRAGE_ASSERT(index >= 0 && index < batchesPerEpoch(),
                  "batch index ", index, " outside epoch of ",
                  batchesPerEpoch(), " batches");
    const int64_t begin = index * batch_size_;
    const int64_t end =
        std::min<int64_t>(begin + batch_size_, data_->size());
    const int count = static_cast<int>(end - begin);
    const int64_t row_len = data_->inputs.size() / data_->size();

    // Reuse out.inputs when its shape already matches (all dims, not just
    // the element count: [4,2,3] and [4,3,2] agree on both).
    const std::vector<int> &src_shape = data_->inputs.shape();
    const std::vector<int> &out_shape = out.inputs.shape();
    const bool fits =
        out_shape.size() == src_shape.size() && !out_shape.empty() &&
        out_shape[0] == count &&
        std::equal(out_shape.begin() + 1, out_shape.end(),
                   src_shape.begin() + 1);
    if (!fits) {
        std::vector<int> shape = src_shape;
        shape[0] = count;
        out.inputs = Tensor(std::move(shape));
    }
    out.num_classes = data_->num_classes;
    out.labels.clear();
    out.labels.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        const int src = order_[static_cast<size_t>(begin + i)];
        for (int64_t j = 0; j < row_len; ++j)
            out.inputs[static_cast<int64_t>(i) * row_len + j] =
                data_->inputs[static_cast<int64_t>(src) * row_len + j];
        out.labels.push_back(data_->labels[static_cast<size_t>(src)]);
    }
}

} // namespace nn
} // namespace mirage
