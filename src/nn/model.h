#ifndef MIRAGE_NN_MODEL_H
#define MIRAGE_NN_MODEL_H

/**
 * @file
 * Model containers (Sequential, ResidualBlock) and the training loop used
 * by the accuracy experiments (Table I, Fig. 5a).
 */

#include <memory>
#include <vector>

#include "nn/data.h"
#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace mirage {
namespace nn {

/** A linear stack of layers. */
class Sequential : public Layer
{
  public:
    Sequential() = default;

    /** Appends a layer (takes ownership); returns *this for chaining. */
    Sequential &add(std::unique_ptr<Layer> layer);

    /** Emplace helper: model.emplace<Dense>(...). */
    template <typename L, typename... Args>
    Sequential &
    emplace(Args &&...args)
    {
        return add(std::make_unique<L>(std::forward<Args>(args)...));
    }

    std::string name() const override { return "Sequential"; }
    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    void appendNamedParams(const std::string &prefix,
                           std::vector<NamedParam> &out) override;

    size_t layerCount() const { return layers_.size(); }

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/**
 * Residual block: y = main(x) + shortcut(x), with an identity shortcut when
 * none is given. Gradients flow through both paths.
 */
class ResidualBlock : public Layer
{
  public:
    explicit ResidualBlock(std::unique_ptr<Layer> main,
                           std::unique_ptr<Layer> shortcut = nullptr);

    std::string name() const override { return "Residual"; }
    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    void appendNamedParams(const std::string &prefix,
                           std::vector<NamedParam> &out) override;

  private:
    std::unique_ptr<Layer> main_;
    std::unique_ptr<Layer> shortcut_;
};

/** Training-loop configuration. */
struct TrainConfig
{
    int epochs = 10;
    int batch_size = 32;
    /// Epoch-indexed learning-rate scale (e.g. /10 after 2/3 of epochs as
    /// in the paper's recipe); identity when empty.
    std::vector<float> lr_schedule;
    bool shuffle = true;
    uint64_t shuffle_seed = 7;
    bool verbose = false;
};

/** Per-epoch training metrics. */
struct TrainResult
{
    std::vector<float> epoch_loss;
    std::vector<float> epoch_train_acc;
    float final_test_accuracy = 0.0f;
};

/** Classification accuracy of `model` on a dataset (eval mode). */
float evaluateAccuracy(Layer &model, const Dataset &data, int batch_size = 64);

/**
 * Trains a classifier with softmax cross-entropy. The optimizer updates
 * FP32 master weights; quantization lives entirely in the model's GEMM
 * backend (paper Sec. V-A methodology).
 */
TrainResult trainClassifier(Layer &model, Optimizer &opt,
                            const Dataset &train, const Dataset &test,
                            const TrainConfig &cfg);

} // namespace nn
} // namespace mirage

#endif // MIRAGE_NN_MODEL_H
