#include "nn/loss.h"

#include <cmath>

#include "common/logging.h"

namespace mirage {
namespace nn {

LossResult
softmaxCrossEntropy(const Tensor &logits, const std::vector<int> &labels)
{
    MIRAGE_ASSERT(logits.rank() == 2, "logits must be [batch, classes]");
    const int batch = logits.dim(0);
    const int classes = logits.dim(1);
    MIRAGE_ASSERT(labels.size() == static_cast<size_t>(batch),
                  "label count mismatch");

    LossResult result;
    result.grad = Tensor({batch, classes});
    double total = 0.0;
    for (int b = 0; b < batch; ++b) {
        MIRAGE_ASSERT(labels[b] >= 0 && labels[b] < classes,
                      "label out of range: ", labels[b]);
        const int64_t base = static_cast<int64_t>(b) * classes;
        float max_v = logits[base];
        for (int c = 1; c < classes; ++c)
            max_v = std::max(max_v, logits[base + c]);
        double denom = 0.0;
        for (int c = 0; c < classes; ++c)
            denom += std::exp(static_cast<double>(logits[base + c]) - max_v);
        const double log_denom = std::log(denom);
        total -= static_cast<double>(logits[base + labels[b]]) - max_v -
                 log_denom;
        for (int c = 0; c < classes; ++c) {
            const double p =
                std::exp(static_cast<double>(logits[base + c]) - max_v) /
                denom;
            result.grad[base + c] = static_cast<float>(
                (p - (c == labels[b] ? 1.0 : 0.0)) / batch);
        }
    }
    result.loss = static_cast<float>(total / batch);
    return result;
}

LossResult
meanSquaredError(const Tensor &pred, const Tensor &target)
{
    MIRAGE_ASSERT(pred.size() == target.size(), "MSE shape mismatch");
    LossResult result;
    result.grad = Tensor(pred.shape());
    double total = 0.0;
    const double inv = 1.0 / static_cast<double>(pred.size());
    for (int64_t i = 0; i < pred.size(); ++i) {
        const double d = static_cast<double>(pred[i]) - target[i];
        total += d * d;
        result.grad[i] = static_cast<float>(2.0 * d * inv);
    }
    result.loss = static_cast<float>(total * inv);
    return result;
}

std::vector<int>
argmaxRows(const Tensor &logits)
{
    MIRAGE_ASSERT(logits.rank() == 2, "logits must be [batch, classes]");
    const int batch = logits.dim(0);
    const int classes = logits.dim(1);
    std::vector<int> out(static_cast<size_t>(batch));
    for (int b = 0; b < batch; ++b) {
        const int64_t base = static_cast<int64_t>(b) * classes;
        int best = 0;
        for (int c = 1; c < classes; ++c)
            if (logits[base + c] > logits[base + best])
                best = c;
        out[static_cast<size_t>(b)] = best;
    }
    return out;
}

} // namespace nn
} // namespace mirage
