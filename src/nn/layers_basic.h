#ifndef MIRAGE_NN_LAYERS_BASIC_H
#define MIRAGE_NN_LAYERS_BASIC_H

/**
 * @file
 * Dense (fully connected), ReLU, GELU and Flatten layers.
 */

#include "nn/layer.h"

namespace mirage {
namespace nn {

/** Fully connected layer: y = x W^T + b, x is [batch, in]. */
class Dense : public Layer
{
  public:
    /**
     * @param backend GEMM executor (non-owning; outlives the layer).
     * @param rng     initializer randomness (Kaiming-style scale).
     */
    Dense(int in_features, int out_features, GemmBackend *backend, Rng &rng,
          bool bias = true);

    std::string name() const override { return "Dense"; }
    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;

    int inFeatures() const { return in_; }
    int outFeatures() const { return out_; }

  private:
    int in_;
    int out_;
    bool has_bias_;
    GemmBackend *backend_;
    Param weight_; ///< [out, in]
    Param bias_;   ///< [out]
    Tensor cached_input_;
    std::vector<int> input_shape_;
};

/** Mean pooling over the time dimension: [B, T, D] -> [B, D]. */
class SequenceMeanPool : public Layer
{
  public:
    std::string name() const override { return "SequenceMeanPool"; }
    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    std::vector<int> input_shape_;
};

/** Rectified linear unit. */
class ReLU : public Layer
{
  public:
    std::string name() const override { return "ReLU"; }
    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    Tensor mask_;
};

/** Gaussian error linear unit (tanh approximation), for transformers. */
class Gelu : public Layer
{
  public:
    std::string name() const override { return "GELU"; }
    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    Tensor cached_input_;
};

/** Collapses all but the leading (batch) dimension. */
class Flatten : public Layer
{
  public:
    std::string name() const override { return "Flatten"; }
    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    std::vector<int> input_shape_;
};

} // namespace nn
} // namespace mirage

#endif // MIRAGE_NN_LAYERS_BASIC_H
