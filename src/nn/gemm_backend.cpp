#include "nn/gemm_backend.h"

#include <algorithm>
#include <cmath>

#include "bfp/bfp_gemm.h"
#include "common/logging.h"
#include "common/workspace.h"

namespace mirage {
namespace nn {

FormatBackend::FormatBackend(numerics::DataFormat format,
                             numerics::FormatGemmConfig cfg, uint64_t seed)
    : format_(format), cfg_(std::move(cfg)), rng_(seed)
{
}

std::string
FormatBackend::name() const
{
    return numerics::toString(format_);
}

void
FormatBackend::gemm(std::span<const float> a, std::span<const float> b,
                    int m, int k, int n, bool a_is_grad, bool b_is_grad,
                    std::span<float> out)
{
    numerics::GemmCall call;
    call.a = a;
    call.b = b;
    call.m = m;
    call.k = k;
    call.n = n;
    call.a_is_grad = a_is_grad;
    call.b_is_grad = b_is_grad;
    call.rng = &rng_;
    numerics::formatGemm(format_, call, cfg_, out);

    if (probe_.sample()) {
        // Shadow execution: re-run this call on the FP32 reference and
        // record the per-layer error. rng is nulled so the shadow never
        // consumes the backend's stream — results stay bit-identical with
        // probes on or off.
        Workspace &ws = threadWorkspace();
        Workspace::Scope scope(ws);
        std::span<float> ref = ws.alloc<float>(out.size());
        numerics::GemmCall shadow = call;
        shadow.rng = nullptr;
        numerics::gemmFp32(shadow, ref);
        const std::string site = "gemm." + name();
        obs::fidelity::recordProbe(site.c_str(), out, ref);
    }
}

PhotonicBackend::PhotonicBackend(int cfg_bm, int cfg_g, int moduli_k, int rows,
                                 photonic::PhotonicNoiseConfig noise,
                                 uint64_t seed)
    : bfp_cfg_{cfg_bm, cfg_g, bfp::Rounding::Nearest},
      array_(rns::ModuliSet::special(moduli_k), rows, cfg_g,
             photonic::DeviceKit{}, 10e9, noise),
      rng_(seed),
      noisy_(noise.anyEnabled())
{
    bfp_cfg_.validate();
    if (!array_.set().canHoldDotProduct(cfg_bm, cfg_g)) {
        MIRAGE_FATAL("moduli k=", moduli_k, " cannot hold BFP bm=", cfg_bm,
                     " g=", cfg_g, " dot products (Eq. 13)");
    }
}

std::string
PhotonicBackend::name() const
{
    return noisy_ ? "Mirage-photonic(noisy)" : "Mirage-photonic";
}

void
PhotonicBackend::gemm(std::span<const float> a, std::span<const float> b,
                      int m, int k, int n, bool /*a_is_grad*/,
                      bool /*b_is_grad*/, std::span<float> out)
{
    MIRAGE_ASSERT(out.size() == static_cast<size_t>(m) * n,
                  "C shape mismatch");
    // BFP-encode exactly as the dataflow prescribes (Fig. 2 steps 1-2):
    // A rows and B columns grouped along the contraction dimension, into
    // packed workspace-backed form (zero-padded tails stream as zeros, just
    // like the legacy per-block staging did).
    Workspace &ws = threadWorkspace();
    Workspace::Scope scope(ws);
    const bfp::BfpPackedMatrix a_enc =
        bfp::encodeRowsPacked(a, m, k, bfp_cfg_, ws);
    const bfp::BfpPackedMatrix b_enc =
        bfp::encodeColsPacked(b, k, n, bfp_cfg_, ws);
    const int chunks = a_enc.chunk_count;
    const int rows = array_.rows();
    const int g = bfp_cfg_.g;
    const int bm = bfp_cfg_.bm;

    std::fill(out.begin(), out.end(), 0.0f);
    std::span<int64_t> tile =
        ws.alloc<int64_t>(static_cast<size_t>(rows) * g);
    std::span<int64_t> x = ws.alloc<int64_t>(static_cast<size_t>(g));
    std::span<int64_t> y = ws.alloc<int64_t>(static_cast<size_t>(rows));
    Rng *rng = noisy_ ? &rng_ : nullptr;

    // Weight-stationary mapping (DF1): mantissa tiles from A are programmed
    // into the array; B-column mantissa chunks stream as inputs.
    for (int r0 = 0; r0 < m; r0 += rows) {
        const int tr = std::min(rows, m - r0);
        for (int ch = 0; ch < chunks; ++ch) {
            std::span<int64_t> t = tile.first(static_cast<size_t>(tr) * g);
            for (int r = 0; r < tr; ++r) {
                const int32_t *src = a_enc.chunk(r0 + r, ch);
                for (int c = 0; c < g; ++c)
                    t[static_cast<size_t>(r) * g + c] = src[c];
            }
            array_.programTile(t, tr, g);

            for (int j = 0; j < n; ++j) {
                const int32_t *src = b_enc.chunk(j, ch);
                for (int c = 0; c < g; ++c)
                    x[static_cast<size_t>(c)] = src[c];
                array_.mvm(x, rng, y);
                for (int r = 0; r < tr; ++r) {
                    // Partial outputs accumulate in FP32 after reverse
                    // conversion and exponent reconstruction (steps 7-9).
                    out[static_cast<size_t>(r0 + r) * n + j] +=
                        static_cast<float>(std::ldexp(
                            static_cast<double>(y[static_cast<size_t>(r)]),
                            a_enc.exponent(r0 + r, ch) + b_enc.exponent(j, ch) -
                                2 * bm));
                }
            }
        }
    }

    if (probe_.sample()) {
        // Shadow execution against the FP32 reference (see FormatBackend):
        // compare-only, no rng consumed, output untouched.
        Workspace::Scope probe_scope(ws);
        std::span<float> ref = ws.alloc<float>(out.size());
        numerics::GemmCall shadow;
        shadow.a = a;
        shadow.b = b;
        shadow.m = m;
        shadow.k = k;
        shadow.n = n;
        numerics::gemmFp32(shadow, ref);
        const std::string site = "gemm." + name();
        obs::fidelity::recordProbe(site.c_str(), out, ref);
    }
}

std::unique_ptr<GemmBackend>
makeFormatBackend(numerics::DataFormat format, uint64_t seed)
{
    numerics::FormatGemmConfig cfg;
    return std::make_unique<FormatBackend>(format, cfg, seed);
}

} // namespace nn
} // namespace mirage
