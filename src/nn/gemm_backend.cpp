#include "nn/gemm_backend.h"

#include <cmath>

#include "bfp/bfp_gemm.h"
#include "common/logging.h"

namespace mirage {
namespace nn {

FormatBackend::FormatBackend(numerics::DataFormat format,
                             numerics::FormatGemmConfig cfg, uint64_t seed)
    : format_(format), cfg_(std::move(cfg)), rng_(seed)
{
}

std::string
FormatBackend::name() const
{
    return numerics::toString(format_);
}

std::vector<float>
FormatBackend::gemm(const std::vector<float> &a, const std::vector<float> &b,
                    int m, int k, int n, bool a_is_grad, bool b_is_grad)
{
    numerics::GemmCall call;
    call.a = &a;
    call.b = &b;
    call.m = m;
    call.k = k;
    call.n = n;
    call.a_is_grad = a_is_grad;
    call.b_is_grad = b_is_grad;
    call.rng = &rng_;
    return numerics::formatGemm(format_, call, cfg_);
}

PhotonicBackend::PhotonicBackend(int cfg_bm, int cfg_g, int moduli_k, int rows,
                                 photonic::PhotonicNoiseConfig noise,
                                 uint64_t seed)
    : bfp_cfg_{cfg_bm, cfg_g, bfp::Rounding::Nearest},
      array_(rns::ModuliSet::special(moduli_k), rows, cfg_g,
             photonic::DeviceKit{}, 10e9, noise),
      rng_(seed),
      noisy_(noise.anyEnabled())
{
    bfp_cfg_.validate();
    if (!array_.set().canHoldDotProduct(cfg_bm, cfg_g)) {
        MIRAGE_FATAL("moduli k=", moduli_k, " cannot hold BFP bm=", cfg_bm,
                     " g=", cfg_g, " dot products (Eq. 13)");
    }
}

std::string
PhotonicBackend::name() const
{
    return noisy_ ? "Mirage-photonic(noisy)" : "Mirage-photonic";
}

std::vector<float>
PhotonicBackend::gemm(const std::vector<float> &a, const std::vector<float> &b,
                      int m, int k, int n, bool /*a_is_grad*/,
                      bool /*b_is_grad*/)
{
    // BFP-encode exactly as the dataflow prescribes (Fig. 2 steps 1-2):
    // A rows and B columns grouped along the contraction dimension.
    const bfp::BfpMatrix a_enc = bfp::encodeRows(a, m, k, bfp_cfg_);
    const bfp::BfpMatrix b_enc = bfp::encodeCols(b, k, n, bfp_cfg_);
    const int chunks = a_enc.chunk_count;
    const int rows = array_.rows();
    const int bm = bfp_cfg_.bm;

    std::vector<float> c(static_cast<size_t>(m) * n, 0.0f);
    std::vector<int64_t> tile;
    std::vector<int64_t> x(static_cast<size_t>(bfp_cfg_.g));
    Rng *rng = noisy_ ? &rng_ : nullptr;

    // Weight-stationary mapping (DF1): mantissa tiles from A are programmed
    // into the array; B-column mantissa chunks stream as inputs.
    for (int r0 = 0; r0 < m; r0 += rows) {
        const int tr = std::min(rows, m - r0);
        for (int ch = 0; ch < chunks; ++ch) {
            tile.assign(static_cast<size_t>(tr) * bfp_cfg_.g, 0);
            for (int r = 0; r < tr; ++r) {
                const bfp::BfpBlock &blk =
                    a_enc.blocks[static_cast<size_t>(r0 + r) * chunks + ch];
                for (size_t t = 0; t < blk.mantissas.size(); ++t)
                    tile[static_cast<size_t>(r) * bfp_cfg_.g + t] =
                        blk.mantissas[t];
            }
            array_.programTile(tile, tr, bfp_cfg_.g);

            for (int j = 0; j < n; ++j) {
                const bfp::BfpBlock &blk =
                    b_enc.blocks[static_cast<size_t>(j) * chunks + ch];
                x.assign(static_cast<size_t>(bfp_cfg_.g), 0);
                for (size_t t = 0; t < blk.mantissas.size(); ++t)
                    x[t] = blk.mantissas[t];
                const std::vector<int64_t> y = array_.mvm(x, rng);
                for (int r = 0; r < tr; ++r) {
                    const bfp::BfpBlock &a_blk =
                        a_enc.blocks[static_cast<size_t>(r0 + r) * chunks + ch];
                    // Partial outputs accumulate in FP32 after reverse
                    // conversion and exponent reconstruction (steps 7-9).
                    c[static_cast<size_t>(r0 + r) * n + j] +=
                        static_cast<float>(std::ldexp(
                            static_cast<double>(y[static_cast<size_t>(r)]),
                            a_blk.exponent + blk.exponent - 2 * bm));
                }
            }
        }
    }
    return c;
}

std::unique_ptr<GemmBackend>
makeFormatBackend(numerics::DataFormat format, uint64_t seed)
{
    numerics::FormatGemmConfig cfg;
    return std::make_unique<FormatBackend>(format, cfg, seed);
}

} // namespace nn
} // namespace mirage
