#ifndef MIRAGE_NN_LAYERS_CONV_H
#define MIRAGE_NN_LAYERS_CONV_H

/**
 * @file
 * Convolution and pooling layers. Conv2d lowers to im2col + GEMM so the
 * quantized GEMM backends cover convolutions exactly as the paper's
 * customized PyTorch layers do (Sec. V-A).
 */

#include "nn/layer.h"

namespace mirage {
namespace nn {

/** 2D convolution over [batch, C, H, W] inputs via im2col + GEMM. */
class Conv2d : public Layer
{
  public:
    Conv2d(int in_channels, int out_channels, int kernel, int stride,
           int padding, GemmBackend *backend, Rng &rng, bool bias = true);

    std::string name() const override { return "Conv2d"; }
    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;

  private:
    int in_ch_, out_ch_, kernel_, stride_, pad_;
    bool has_bias_;
    GemmBackend *backend_;
    Param weight_; ///< [out, in * k * k]
    Param bias_;   ///< [out]
    // Cached forward context.
    std::vector<float> cached_cols_; ///< [K, batch * P]
    int cached_batch_ = 0, cached_h_ = 0, cached_w_ = 0;
    int out_h_ = 0, out_w_ = 0;
};

/** 2x2 max pooling with stride 2. */
class MaxPool2d : public Layer
{
  public:
    std::string name() const override { return "MaxPool2d"; }
    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    std::vector<int64_t> argmax_;
    std::vector<int> input_shape_;
};

/** Global average pooling: [B, C, H, W] -> [B, C]. */
class GlobalAvgPool : public Layer
{
  public:
    std::string name() const override { return "GlobalAvgPool"; }
    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    std::vector<int> input_shape_;
};

} // namespace nn
} // namespace mirage

#endif // MIRAGE_NN_LAYERS_CONV_H
