#ifndef MIRAGE_NN_LAYERS_NORM_H
#define MIRAGE_NN_LAYERS_NORM_H

/**
 * @file
 * Normalization layers: BatchNorm2d (for CNNs/ResNets) and LayerNorm (for
 * the transformer). Normalization math runs in FP32 like the paper's
 * nonlinearities (quantization only touches GEMMs).
 */

#include "nn/layer.h"

namespace mirage {
namespace nn {

/** Per-channel batch normalization over [B, C, H, W]. */
class BatchNorm2d : public Layer
{
  public:
    explicit BatchNorm2d(int channels, float momentum = 0.1f,
                         float eps = 1e-5f);

    std::string name() const override { return "BatchNorm2d"; }
    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;

  private:
    int channels_;
    float momentum_;
    float eps_;
    Param gamma_;
    Param beta_;
    Tensor running_mean_;
    Tensor running_var_;
    // Backward context.
    Tensor cached_xhat_;
    std::vector<float> cached_invstd_;
    std::vector<int> input_shape_;
};

/** Layer normalization over the last dimension of [.., D]. */
class LayerNorm : public Layer
{
  public:
    explicit LayerNorm(int dim, float eps = 1e-5f);

    std::string name() const override { return "LayerNorm"; }
    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;

  private:
    int dim_;
    float eps_;
    Param gamma_;
    Param beta_;
    Tensor cached_xhat_;
    std::vector<float> cached_invstd_;
    std::vector<int> input_shape_;
};

} // namespace nn
} // namespace mirage

#endif // MIRAGE_NN_LAYERS_NORM_H
