#ifndef MIRAGE_NN_LOSS_H
#define MIRAGE_NN_LOSS_H

/**
 * @file
 * Loss functions. Computed in FP32 (quantization only touches GEMMs).
 */

#include <vector>

#include "nn/tensor.h"

namespace mirage {
namespace nn {

/** Loss value plus the gradient with respect to the logits. */
struct LossResult
{
    float loss = 0.0f;
    Tensor grad; ///< dL/d(logits), already averaged over the batch.
};

/** Softmax cross-entropy over [batch, classes] logits. */
LossResult softmaxCrossEntropy(const Tensor &logits,
                               const std::vector<int> &labels);

/** Mean squared error against a target tensor of identical shape. */
LossResult meanSquaredError(const Tensor &pred, const Tensor &target);

/** Arg-max class predictions for [batch, classes] logits. */
std::vector<int> argmaxRows(const Tensor &logits);

} // namespace nn
} // namespace mirage

#endif // MIRAGE_NN_LOSS_H
