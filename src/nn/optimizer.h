#ifndef MIRAGE_NN_OPTIMIZER_H
#define MIRAGE_NN_OPTIMIZER_H

/**
 * @file
 * Optimizers operating on FP32 master weights (paper Sec. III step 10:
 * "we store the weights in FP32 ... and perform the weight updates in
 * FP32"). SGD(+momentum) for the CNNs and Adam for the transformer, as in
 * the paper's training recipes (Sec. VI-B).
 */

#include <string>
#include <unordered_map>
#include <vector>

#include "nn/layer.h"

namespace mirage {
namespace nn {

/** Optimizer interface over a parameter list. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Applies one update step and leaves gradients untouched. */
    virtual void step(const std::vector<Param *> &params) = 0;

    /** Zeroes all gradients. */
    static void zeroGrad(const std::vector<Param *> &params);

    // --- learning-rate hooks (train/schedule.cpp) ----------------------
    // Schedules scale the learning rate through the base class so the
    // training loops need no per-optimizer dynamic_cast.

    /** Current learning rate. */
    virtual float lr() const = 0;

    /** Replaces the learning rate (schedules call this every step). */
    virtual void setLr(float lr) = 0;

    // --- checkpointing hooks (serve/checkpoint.cpp) --------------------
    // Optimizer state is keyed internally by Param*, which does not
    // survive a process restart; these hooks expose it per parameter so a
    // checkpoint can store it under the parameter's path instead.

    /** Identifier written into checkpoints ("sgd", "adam"). */
    virtual std::string typeName() const = 0;

    /** Names of the per-parameter state slots (e.g. {"m", "v"}). */
    virtual std::vector<std::string> stateSlots() const { return {}; }

    /**
     * Copy of one state slot for `p`; empty when the slot has not been
     * materialized yet (no step taken on this parameter).
     */
    virtual std::vector<float>
    stateSlot(const Param *p, const std::string &slot) const
    {
        (void)p;
        (void)slot;
        return {};
    }

    /** Installs one state slot for `p` (restore path). */
    virtual void
    setStateSlot(Param *p, const std::string &slot, std::vector<float> data)
    {
        (void)p;
        (void)slot;
        (void)data;
    }

    /** Global step counter (Adam's bias-correction t; 0 when unused). */
    virtual int64_t stepCount() const { return 0; }

    /** Restores the global step counter. */
    virtual void setStepCount(int64_t t) { (void)t; }
};

/** Stochastic gradient descent with classical momentum. */
class Sgd : public Optimizer
{
  public:
    explicit Sgd(float lr, float momentum = 0.0f, float weight_decay = 0.0f);

    void step(const std::vector<Param *> &params) override;

    float lr() const override { return lr_; }
    void setLr(float lr) override { lr_ = lr; }

    std::string typeName() const override { return "sgd"; }
    std::vector<std::string> stateSlots() const override;
    std::vector<float> stateSlot(const Param *p,
                                 const std::string &slot) const override;
    void setStateSlot(Param *p, const std::string &slot,
                      std::vector<float> data) override;

  private:
    float lr_;
    float momentum_;
    float weight_decay_;
    std::unordered_map<Param *, std::vector<float>> velocity_;
};

/** Adam (Kingma & Ba) with bias correction. */
class Adam : public Optimizer
{
  public:
    explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                  float eps = 1e-8f);

    void step(const std::vector<Param *> &params) override;

    float lr() const override { return lr_; }
    void setLr(float lr) override { lr_ = lr; }

    std::string typeName() const override { return "adam"; }
    std::vector<std::string> stateSlots() const override;
    std::vector<float> stateSlot(const Param *p,
                                 const std::string &slot) const override;
    void setStateSlot(Param *p, const std::string &slot,
                      std::vector<float> data) override;
    int64_t stepCount() const override { return t_; }
    void setStepCount(int64_t t) override { t_ = t; }

  private:
    float lr_, beta1_, beta2_, eps_;
    int64_t t_ = 0;
    std::unordered_map<Param *, std::vector<float>> m_;
    std::unordered_map<Param *, std::vector<float>> v_;
};

} // namespace nn
} // namespace mirage

#endif // MIRAGE_NN_OPTIMIZER_H
