#include "nn/layers_norm.h"

#include <cmath>

#include "common/logging.h"

namespace mirage {
namespace nn {

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps)
{
    gamma_.name = "bn.gamma";
    gamma_.value = Tensor({channels_});
    gamma_.value.fill(1.0f);
    gamma_.grad = Tensor::zeros({channels_});
    beta_.name = "bn.beta";
    beta_.value = Tensor::zeros({channels_});
    beta_.grad = Tensor::zeros({channels_});
    running_mean_ = Tensor::zeros({channels_});
    running_var_ = Tensor({channels_});
    running_var_.fill(1.0f);
}

Tensor
BatchNorm2d::forward(const Tensor &x, bool training)
{
    MIRAGE_ASSERT(x.rank() == 4 && x.dim(1) == channels_,
                  "BatchNorm2d expects [B, ", channels_, ", H, W]");
    input_shape_ = x.shape();
    const int batch = x.dim(0);
    const int64_t hw = static_cast<int64_t>(x.dim(2)) * x.dim(3);
    const double count = static_cast<double>(batch) * hw;

    cached_xhat_ = Tensor(x.shape());
    cached_invstd_.assign(static_cast<size_t>(channels_), 0.0f);
    Tensor y(x.shape());

    for (int c = 0; c < channels_; ++c) {
        double mean, var;
        if (training) {
            double s = 0.0, s2 = 0.0;
            for (int b = 0; b < batch; ++b) {
                const int64_t base =
                    (static_cast<int64_t>(b) * channels_ + c) * hw;
                for (int64_t i = 0; i < hw; ++i) {
                    const double v = x[base + i];
                    s += v;
                    s2 += v * v;
                }
            }
            mean = s / count;
            var = std::max(0.0, s2 / count - mean * mean);
            running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                               momentum_ * static_cast<float>(mean);
            running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                              momentum_ * static_cast<float>(var);
        } else {
            mean = running_mean_[c];
            var = running_var_[c];
        }
        const float invstd = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
        cached_invstd_[static_cast<size_t>(c)] = invstd;
        for (int b = 0; b < batch; ++b) {
            const int64_t base =
                (static_cast<int64_t>(b) * channels_ + c) * hw;
            for (int64_t i = 0; i < hw; ++i) {
                const float xhat =
                    (x[base + i] - static_cast<float>(mean)) * invstd;
                cached_xhat_[base + i] = xhat;
                y[base + i] = gamma_.value[c] * xhat + beta_.value[c];
            }
        }
    }
    return y;
}

Tensor
BatchNorm2d::backward(const Tensor &grad_out)
{
    const int batch = input_shape_[0];
    const int64_t hw =
        static_cast<int64_t>(input_shape_[2]) * input_shape_[3];
    const double count = static_cast<double>(batch) * hw;
    Tensor grad_in(input_shape_);

    for (int c = 0; c < channels_; ++c) {
        double sum_dy = 0.0, sum_dy_xhat = 0.0;
        for (int b = 0; b < batch; ++b) {
            const int64_t base =
                (static_cast<int64_t>(b) * channels_ + c) * hw;
            for (int64_t i = 0; i < hw; ++i) {
                sum_dy += grad_out[base + i];
                sum_dy_xhat += grad_out[base + i] * cached_xhat_[base + i];
            }
        }
        gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
        beta_.grad[c] += static_cast<float>(sum_dy);

        const float invstd = cached_invstd_[static_cast<size_t>(c)];
        const float g = gamma_.value[c];
        for (int b = 0; b < batch; ++b) {
            const int64_t base =
                (static_cast<int64_t>(b) * channels_ + c) * hw;
            for (int64_t i = 0; i < hw; ++i) {
                const double dy = grad_out[base + i];
                grad_in[base + i] = static_cast<float>(
                    g * invstd *
                    (dy - sum_dy / count -
                     cached_xhat_[base + i] * sum_dy_xhat / count));
            }
        }
    }
    return grad_in;
}

std::vector<Param *>
BatchNorm2d::params()
{
    return {&gamma_, &beta_};
}

LayerNorm::LayerNorm(int dim, float eps) : dim_(dim), eps_(eps)
{
    gamma_.name = "ln.gamma";
    gamma_.value = Tensor({dim_});
    gamma_.value.fill(1.0f);
    gamma_.grad = Tensor::zeros({dim_});
    beta_.name = "ln.beta";
    beta_.value = Tensor::zeros({dim_});
    beta_.grad = Tensor::zeros({dim_});
}

Tensor
LayerNorm::forward(const Tensor &x, bool /*training*/)
{
    MIRAGE_ASSERT(x.rank() >= 1 && x.shape().back() == dim_,
                  "LayerNorm expects trailing dim ", dim_);
    input_shape_ = x.shape();
    const int64_t rows = x.size() / dim_;
    cached_xhat_ = Tensor(x.shape());
    cached_invstd_.assign(static_cast<size_t>(rows), 0.0f);
    Tensor y(x.shape());
    for (int64_t r = 0; r < rows; ++r) {
        const int64_t base = r * dim_;
        double s = 0.0, s2 = 0.0;
        for (int i = 0; i < dim_; ++i) {
            s += x[base + i];
            s2 += static_cast<double>(x[base + i]) * x[base + i];
        }
        const double mean = s / dim_;
        const double var = std::max(0.0, s2 / dim_ - mean * mean);
        const float invstd = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
        cached_invstd_[static_cast<size_t>(r)] = invstd;
        for (int i = 0; i < dim_; ++i) {
            const float xhat =
                (x[base + i] - static_cast<float>(mean)) * invstd;
            cached_xhat_[base + i] = xhat;
            y[base + i] = gamma_.value[i] * xhat + beta_.value[i];
        }
    }
    return y;
}

Tensor
LayerNorm::backward(const Tensor &grad_out)
{
    const int64_t rows = grad_out.size() / dim_;
    Tensor grad_in(input_shape_);
    for (int64_t r = 0; r < rows; ++r) {
        const int64_t base = r * dim_;
        double sum_dy = 0.0, sum_dy_xhat = 0.0;
        for (int i = 0; i < dim_; ++i) {
            const double dyg = grad_out[base + i] * gamma_.value[i];
            sum_dy += dyg;
            sum_dy_xhat += dyg * cached_xhat_[base + i];
            gamma_.grad[i] += grad_out[base + i] * cached_xhat_[base + i];
            beta_.grad[i] += grad_out[base + i];
        }
        const float invstd = cached_invstd_[static_cast<size_t>(r)];
        for (int i = 0; i < dim_; ++i) {
            const double dyg = grad_out[base + i] * gamma_.value[i];
            grad_in[base + i] = static_cast<float>(
                invstd * (dyg - sum_dy / dim_ -
                          cached_xhat_[base + i] * sum_dy_xhat / dim_));
        }
    }
    return grad_in;
}

std::vector<Param *>
LayerNorm::params()
{
    return {&gamma_, &beta_};
}

} // namespace nn
} // namespace mirage
