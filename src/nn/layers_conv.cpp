#include "nn/layers_conv.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/workspace.h"
#include "obs/fidelity.h"

namespace mirage {
namespace nn {

namespace {

/**
 * im2col: input [C, H, W] (one sample) into columns [C*k*k, P] appended at
 * column offset `col0` of a [K, total_cols] buffer.
 */
void
im2colSample(const float *x, int ch, int h, int w, int kernel, int stride,
             int pad, int out_h, int out_w, std::vector<float> &cols,
             int total_cols, int col0)
{
    const int k2 = kernel * kernel;
    for (int c = 0; c < ch; ++c) {
        for (int ky = 0; ky < kernel; ++ky) {
            for (int kx = 0; kx < kernel; ++kx) {
                const int row = c * k2 + ky * kernel + kx;
                for (int oy = 0; oy < out_h; ++oy) {
                    const int iy = oy * stride + ky - pad;
                    for (int ox = 0; ox < out_w; ++ox) {
                        const int ix = ox * stride + kx - pad;
                        float v = 0.0f;
                        if (iy >= 0 && iy < h && ix >= 0 && ix < w)
                            v = x[(static_cast<size_t>(c) * h + iy) * w + ix];
                        cols[static_cast<size_t>(row) * total_cols + col0 +
                             oy * out_w + ox] = v;
                    }
                }
            }
        }
    }
}

/** col2im scatter-add: the adjoint of im2colSample. */
void
col2imSample(std::span<const float> cols, int ch, int h, int w, int kernel,
             int stride, int pad, int out_h, int out_w, float *dx,
             int total_cols, int col0)
{
    const int k2 = kernel * kernel;
    for (int c = 0; c < ch; ++c) {
        for (int ky = 0; ky < kernel; ++ky) {
            for (int kx = 0; kx < kernel; ++kx) {
                const int row = c * k2 + ky * kernel + kx;
                for (int oy = 0; oy < out_h; ++oy) {
                    const int iy = oy * stride + ky - pad;
                    if (iy < 0 || iy >= h)
                        continue;
                    for (int ox = 0; ox < out_w; ++ox) {
                        const int ix = ox * stride + kx - pad;
                        if (ix < 0 || ix >= w)
                            continue;
                        dx[(static_cast<size_t>(c) * h + iy) * w + ix] +=
                            cols[static_cast<size_t>(row) * total_cols + col0 +
                                 oy * out_w + ox];
                    }
                }
            }
        }
    }
}

} // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int padding, GemmBackend *backend, Rng &rng, bool bias)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(padding),
      has_bias_(bias),
      backend_(backend)
{
    MIRAGE_ASSERT(backend_ != nullptr, "Conv2d needs a GEMM backend");
    MIRAGE_ASSERT(kernel_ >= 1 && stride_ >= 1 && pad_ >= 0,
                  "bad convolution geometry");
    const int fan_in = in_ch_ * kernel_ * kernel_;
    const float scale = std::sqrt(2.0f / static_cast<float>(fan_in));
    weight_.name = "conv.weight";
    weight_.value = Tensor::randn({out_ch_, fan_in}, rng, scale);
    weight_.grad = Tensor::zeros({out_ch_, fan_in});
    if (has_bias_) {
        bias_.name = "conv.bias";
        bias_.value = Tensor::zeros({out_ch_});
        bias_.grad = Tensor::zeros({out_ch_});
    }
}

Tensor
Conv2d::forward(const Tensor &x, bool /*training*/)
{
    MIRAGE_ASSERT(x.rank() == 4 && x.dim(1) == in_ch_,
                  "Conv2d expects [B, ", in_ch_, ", H, W], got ",
                  x.shapeString());
    obs::fidelity::LayerScope fidelity_scope("Conv2d.fwd");
    cached_batch_ = x.dim(0);
    cached_h_ = x.dim(2);
    cached_w_ = x.dim(3);
    out_h_ = (cached_h_ + 2 * pad_ - kernel_) / stride_ + 1;
    out_w_ = (cached_w_ + 2 * pad_ - kernel_) / stride_ + 1;
    MIRAGE_ASSERT(out_h_ > 0 && out_w_ > 0, "convolution output collapsed");

    const int k_dim = in_ch_ * kernel_ * kernel_;
    const int p = out_h_ * out_w_;
    const int total_cols = cached_batch_ * p;
    // The im2col matrix is a member so (a) backward reuses it and (b) its
    // capacity survives across steps — assign() only reallocates when the
    // shape grows, so steady-state training re-fills the same buffer.
    cached_cols_.assign(static_cast<size_t>(k_dim) * total_cols, 0.0f);
    const int64_t sample_sz =
        static_cast<int64_t>(in_ch_) * cached_h_ * cached_w_;
    for (int b = 0; b < cached_batch_; ++b) {
        im2colSample(x.data() + b * sample_sz, in_ch_, cached_h_, cached_w_,
                     kernel_, stride_, pad_, out_h_, out_w_, cached_cols_,
                     total_cols, b * p);
    }

    // Y(mat) = W(out x K) * cols(K x B*P)  — one GEMM for the whole batch,
    // staged through this thread's arena.
    Workspace &ws = threadWorkspace();
    Workspace::Scope scope(ws);
    std::span<float> y_mat =
        ws.alloc<float>(static_cast<size_t>(out_ch_) * total_cols);
    backend_->gemm(weight_.value.vec(), cached_cols_, out_ch_, k_dim,
                   total_cols, false, false, y_mat);

    Tensor y({cached_batch_, out_ch_, out_h_, out_w_});
    for (int b = 0; b < cached_batch_; ++b) {
        for (int o = 0; o < out_ch_; ++o) {
            const float bias_v = has_bias_ ? bias_.value[o] : 0.0f;
            for (int i = 0; i < p; ++i) {
                y[((static_cast<int64_t>(b) * out_ch_ + o) * p) + i] =
                    y_mat[static_cast<size_t>(o) * total_cols + b * p + i] +
                    bias_v;
            }
        }
    }
    return y;
}

Tensor
Conv2d::backward(const Tensor &grad_out)
{
    obs::fidelity::LayerScope fidelity_scope("Conv2d.bwd");
    const int p = out_h_ * out_w_;
    const int total_cols = cached_batch_ * p;
    const int k_dim = in_ch_ * kernel_ * kernel_;
    MIRAGE_ASSERT(grad_out.rank() == 4 && grad_out.dim(1) == out_ch_ &&
                      grad_out.dim(2) == out_h_ && grad_out.dim(3) == out_w_,
                  "Conv2d backward shape mismatch");

    // All backward temporaries are per-call scratch from this thread's
    // arena; only cached_cols_ (filled by forward) persists.
    Workspace &ws = threadWorkspace();
    Workspace::Scope scope(ws);

    // Repack dY to (out x B*P) to mirror the forward layout.
    std::span<float> dy_mat =
        ws.alloc<float>(static_cast<size_t>(out_ch_) * total_cols);
    for (int b = 0; b < cached_batch_; ++b)
        for (int o = 0; o < out_ch_; ++o)
            for (int i = 0; i < p; ++i)
                dy_mat[static_cast<size_t>(o) * total_cols + b * p + i] =
                    grad_out[((static_cast<int64_t>(b) * out_ch_ + o) * p) + i];

    // dW = dY * cols^T : (out x B*P) * (B*P x K).
    std::span<float> cols_t =
        ws.alloc<float>(static_cast<size_t>(k_dim) * total_cols);
    transposeInto(cached_cols_, k_dim, total_cols, cols_t);
    std::span<float> dw =
        ws.alloc<float>(static_cast<size_t>(out_ch_) * k_dim);
    backend_->gemm(dy_mat, cols_t, out_ch_, total_cols, k_dim, true, false,
                   dw);
    for (int64_t i = 0; i < weight_.grad.size(); ++i)
        weight_.grad[i] += dw[static_cast<size_t>(i)];

    if (has_bias_) {
        for (int o = 0; o < out_ch_; ++o) {
            float s = 0.0f;
            for (int i = 0; i < total_cols; ++i)
                s += dy_mat[static_cast<size_t>(o) * total_cols + i];
            bias_.grad[o] += s;
        }
    }

    // dcols = W^T * dY : (K x out) * (out x B*P).
    std::span<float> w_t =
        ws.alloc<float>(static_cast<size_t>(out_ch_) * k_dim);
    transposeInto(weight_.value.vec(), out_ch_, k_dim, w_t);
    std::span<float> dcols =
        ws.alloc<float>(static_cast<size_t>(k_dim) * total_cols);
    backend_->gemm(w_t, dy_mat, k_dim, out_ch_, total_cols, false, true,
                   dcols);

    Tensor grad_in({cached_batch_, in_ch_, cached_h_, cached_w_});
    const int64_t sample_sz =
        static_cast<int64_t>(in_ch_) * cached_h_ * cached_w_;
    for (int b = 0; b < cached_batch_; ++b) {
        col2imSample(dcols, in_ch_, cached_h_, cached_w_, kernel_, stride_,
                     pad_, out_h_, out_w_, grad_in.data() + b * sample_sz,
                     total_cols, b * p);
    }
    return grad_in;
}

std::vector<Param *>
Conv2d::params()
{
    if (has_bias_)
        return {&weight_, &bias_};
    return {&weight_};
}

Tensor
MaxPool2d::forward(const Tensor &x, bool /*training*/)
{
    MIRAGE_ASSERT(x.rank() == 4, "MaxPool2d expects [B, C, H, W]");
    input_shape_ = x.shape();
    const int batch = x.dim(0), ch = x.dim(1), h = x.dim(2), w = x.dim(3);
    MIRAGE_ASSERT(h % 2 == 0 && w % 2 == 0,
                  "MaxPool2d requires even spatial dims, got ",
                  x.shapeString());
    const int oh = h / 2, ow = w / 2;
    Tensor y({batch, ch, oh, ow});
    argmax_.assign(static_cast<size_t>(y.size()), 0);
    for (int b = 0; b < batch; ++b) {
        for (int c = 0; c < ch; ++c) {
            const int64_t plane = (static_cast<int64_t>(b) * ch + c);
            for (int oy = 0; oy < oh; ++oy) {
                for (int ox = 0; ox < ow; ++ox) {
                    float best = -std::numeric_limits<float>::infinity();
                    int64_t best_idx = 0;
                    for (int dy = 0; dy < 2; ++dy) {
                        for (int dx = 0; dx < 2; ++dx) {
                            const int64_t idx =
                                (plane * h + (2 * oy + dy)) * w + 2 * ox + dx;
                            if (x[idx] > best) {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    const int64_t out_idx = (plane * oh + oy) * ow + ox;
                    y[out_idx] = best;
                    argmax_[static_cast<size_t>(out_idx)] = best_idx;
                }
            }
        }
    }
    return y;
}

Tensor
MaxPool2d::backward(const Tensor &grad_out)
{
    Tensor grad_in(input_shape_);
    for (int64_t i = 0; i < grad_out.size(); ++i)
        grad_in[argmax_[static_cast<size_t>(i)]] += grad_out[i];
    return grad_in;
}

Tensor
GlobalAvgPool::forward(const Tensor &x, bool /*training*/)
{
    MIRAGE_ASSERT(x.rank() == 4, "GlobalAvgPool expects [B, C, H, W]");
    input_shape_ = x.shape();
    const int batch = x.dim(0), ch = x.dim(1);
    const int64_t hw = static_cast<int64_t>(x.dim(2)) * x.dim(3);
    Tensor y({batch, ch});
    for (int b = 0; b < batch; ++b) {
        for (int c = 0; c < ch; ++c) {
            double s = 0.0;
            const int64_t base = (static_cast<int64_t>(b) * ch + c) * hw;
            for (int64_t i = 0; i < hw; ++i)
                s += x[base + i];
            y[static_cast<int64_t>(b) * ch + c] =
                static_cast<float>(s / static_cast<double>(hw));
        }
    }
    return y;
}

Tensor
GlobalAvgPool::backward(const Tensor &grad_out)
{
    Tensor grad_in(input_shape_);
    const int batch = input_shape_[0], ch = input_shape_[1];
    const int64_t hw =
        static_cast<int64_t>(input_shape_[2]) * input_shape_[3];
    const float inv = 1.0f / static_cast<float>(hw);
    for (int b = 0; b < batch; ++b) {
        for (int c = 0; c < ch; ++c) {
            const float g =
                grad_out[static_cast<int64_t>(b) * ch + c] * inv;
            const int64_t base = (static_cast<int64_t>(b) * ch + c) * hw;
            for (int64_t i = 0; i < hw; ++i)
                grad_in[base + i] = g;
        }
    }
    return grad_in;
}

} // namespace nn
} // namespace mirage
