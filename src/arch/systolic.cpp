#include "arch/systolic.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace mirage {
namespace arch {

SystolicSpec
systolicSpec(numerics::DataFormat format)
{
    using numerics::DataFormat;
    switch (format) {
      case DataFormat::FP32:
        return {format, 500e6, 12.42, 9.6e-3};
      case DataFormat::BFLOAT16:
        return {format, 500e6, 3.20, 3.5e-3};
      case DataFormat::HFP8:
        return {format, 500e6, 1.47, 1.4e-3};
      case DataFormat::INT12:
        return {format, 1e9, 0.71, 7.7e-4};
      case DataFormat::INT8:
        return {format, 1e9, 0.42, 4.1e-4};
      case DataFormat::FMAC:
        // Zhang et al. [69]; the paper reports no area for FMAC units.
        return {format, 500e6, 0.11, -1.0};
      case DataFormat::MirageBfpRns:
        break;
    }
    MIRAGE_FATAL("Mirage is not a systolic-array format");
}

SystolicPerfModel::SystolicPerfModel(const SystolicConfig &cfg) : cfg_(cfg)
{
    if (cfg_.rows < 1 || cfg_.cols < 1 || cfg_.num_arrays < 1)
        MIRAGE_FATAL("systolic geometry must be positive");
    if (cfg_.spec.clock_hz <= 0)
        MIRAGE_FATAL("systolic clock must be positive");
}

GemmPerf
SystolicPerfModel::gemm(const GemmShape &shape, Dataflow df,
                        int64_t count) const
{
    MIRAGE_ASSERT(count >= 1, "GEMM count must be positive");
    const int64_t rows = cfg_.rows;
    const int64_t cols = cfg_.cols;
    const int64_t arrays = cfg_.num_arrays;

    GemmPerf perf;
    perf.macs = count * shape.macs();

    // Classic analytic systolic timing: per tile, a load/fill phase, a
    // streaming phase, and a pipeline drain of rows + cols - 2 cycles.
    int64_t tiles_per = 0;
    int64_t stream = 0;
    int64_t fill = 0;
    switch (df) {
      case Dataflow::DF1:
        // Weight stationary: tile holds a (rows x cols) = (K x M) weight
        // block, loaded row-by-row; N input vectors stream through.
        tiles_per = ceilDiv(shape.k, rows) * ceilDiv(shape.m, cols);
        stream = shape.n;
        fill = rows;
        break;
      case Dataflow::DF2:
        // Input stationary: tile holds a (K x N) input block; M weight rows
        // stream through.
        tiles_per = ceilDiv(shape.k, rows) * ceilDiv(shape.n, cols);
        stream = shape.m;
        fill = rows;
        break;
      case Dataflow::DF3:
        // Output stationary: tile accumulates a (M x N) output block while
        // K products stream in; outputs shift out over `rows` cycles.
        tiles_per = ceilDiv(shape.m, rows) * ceilDiv(shape.n, cols);
        stream = shape.k;
        fill = rows;
        break;
    }

    const int64_t tiles = count * tiles_per;
    const int64_t waves = ceilDiv(tiles, arrays);
    const int64_t cycles_per_tile = fill + stream + rows + cols - 2;
    perf.tiles = tiles;
    perf.stream_cycles = waves * stream;
    perf.time_s = static_cast<double>(waves) *
                  static_cast<double>(cycles_per_tile) / cfg_.spec.clock_hz;

    const double allocated = static_cast<double>(waves) * arrays * rows *
                             cols * static_cast<double>(stream);
    perf.spatial_util = static_cast<double>(perf.macs) / allocated;
    return perf;
}

std::pair<Dataflow, GemmPerf>
SystolicPerfModel::best(const GemmShape &shape, int64_t count) const
{
    Dataflow best_df = Dataflow::DF1;
    GemmPerf best_perf = gemm(shape, Dataflow::DF1, count);
    for (Dataflow df : {Dataflow::DF2, Dataflow::DF3}) {
        const GemmPerf p = gemm(shape, df, count);
        if (p.time_s < best_perf.time_s) {
            best_df = df;
            best_perf = p;
        }
    }
    return {best_df, best_perf};
}

} // namespace arch
} // namespace mirage
