#ifndef MIRAGE_ARCH_GEMM_SHAPE_H
#define MIRAGE_ARCH_GEMM_SHAPE_H

/**
 * @file
 * GEMM shape algebra for the performance models: the three training GEMMs
 * per layer (paper Sec. II-A, Eqs. (1)-(3)) and their tiled mapping.
 */

#include <array>
#include <cstdint>
#include <string>

namespace mirage {
namespace arch {

/** One GEMM: C[m x n] = A[m x k] * B[k x n]. */
struct GemmShape
{
    int64_t m = 0;
    int64_t k = 0;
    int64_t n = 0;

    /** Multiply-accumulate count. */
    int64_t macs() const { return m * k * n; }

    /** The transposed problem (used to express operand-B stationarity). */
    GemmShape transposed() const { return {n, k, m}; }
};

/** The three GEMMs of one training step on one layer. */
enum class TrainingOp
{
    Forward,    ///< O = W X            (Eq. 1)
    InputGrad,  ///< dX = W^T dO        (Eq. 2)
    WeightGrad, ///< dW = dO X^T        (Eq. 3)
};

/** Printable op name. */
const char *toString(TrainingOp op);

/** All three ops in execution order. */
inline constexpr std::array<TrainingOp, 3> kTrainingOps = {
    TrainingOp::Forward, TrainingOp::InputGrad, TrainingOp::WeightGrad};

/**
 * GEMM shapes of the three training ops for a layer whose forward pass is
 * O[out x n] = W[out x in] * X[in x n] (n = batch * output pixels):
 *   Forward    : (out, in,  n)
 *   InputGrad  : (in,  out, n)
 *   WeightGrad : (out, n,  in)
 */
std::array<GemmShape, 3> trainingGemms(int64_t out_features,
                                       int64_t in_features, int64_t n);

/** Shape of a single training op (see trainingGemms). */
GemmShape trainingGemm(TrainingOp op, int64_t out_features,
                       int64_t in_features, int64_t n);

} // namespace arch
} // namespace mirage

#endif // MIRAGE_ARCH_GEMM_SHAPE_H
