#ifndef MIRAGE_ARCH_SYSTOLIC_H
#define MIRAGE_ARCH_SYSTOLIC_H

/**
 * @file
 * Systolic-array baseline (paper Sec. V-B2 and VI-C): classic R x C PE
 * arrays with weight/input/output-stationary dataflows, parameterized by
 * the Table II MAC-unit constants (energy, area, clock per data format).
 * Multiple fixed-size arrays are used instead of one large array, matching
 * the paper's scaling methodology.
 */

#include <cstdint>

#include "arch/gemm_shape.h"
#include "arch/perf_model.h"
#include "numerics/formats.h"

namespace mirage {
namespace arch {

/** Per-format MAC-unit constants (paper Table II). */
struct SystolicSpec
{
    numerics::DataFormat format = numerics::DataFormat::FP32;
    double clock_hz = 500e6;
    double pj_per_mac = 12.42;
    double mm2_per_mac = 9.6e-3; ///< <= 0 means not reported (FMAC).

    /** Energy per MAC [J]. */
    double energyPerMacJ() const { return pj_per_mac * 1e-12; }
};

/**
 * Table II constants for a baseline format. Fatal for MirageBfpRns —
 * Mirage is not a systolic array.
 */
SystolicSpec systolicSpec(numerics::DataFormat format);

/** A deployment: `num_arrays` independent rows x cols arrays. */
struct SystolicConfig
{
    SystolicSpec spec;
    int rows = 16;
    int cols = 32;
    int num_arrays = 8;

    int64_t macUnits() const
    {
        return static_cast<int64_t>(rows) * cols * num_arrays;
    }

    /** Aggregate MAC-unit power at full activity [W]. */
    double computePowerW() const
    {
        return static_cast<double>(macUnits()) * spec.energyPerMacJ() *
               spec.clock_hz;
    }

    /** Aggregate MAC-unit area [mm^2]; 0 when the format has no area data. */
    double areaMm2() const
    {
        return spec.mm2_per_mac > 0
                   ? static_cast<double>(macUnits()) * spec.mm2_per_mac
                   : 0.0;
    }
};

/** Analytic timing for the systolic baseline. All three dataflows apply. */
class SystolicPerfModel
{
  public:
    explicit SystolicPerfModel(const SystolicConfig &cfg);

    /** Latency of `count` identical GEMMs under the given dataflow. */
    GemmPerf gemm(const GemmShape &shape, Dataflow df,
                  int64_t count = 1) const;

    /** Best dataflow among DF1/DF2/DF3 for this GEMM. */
    std::pair<Dataflow, GemmPerf> best(const GemmShape &shape,
                                       int64_t count = 1) const;

    /** MAC energy of a workload under this format [J]. */
    double energyJ(int64_t macs) const
    {
        return static_cast<double>(macs) * cfg_.spec.energyPerMacJ();
    }

    const SystolicConfig &config() const { return cfg_; }

  private:
    SystolicConfig cfg_;
};

} // namespace arch
} // namespace mirage

#endif // MIRAGE_ARCH_SYSTOLIC_H
