#ifndef MIRAGE_ARCH_ISO_SCALING_H
#define MIRAGE_ARCH_ISO_SCALING_H

/**
 * @file
 * Iso-energy / iso-area baseline scaling (paper Sec. VI-C, Fig. 8): the
 * number of systolic MAC units is scaled against Mirage's budget while the
 * 16x32 array size stays fixed (the paper found bigger single arrays lose
 * performance to tile-load latency) — the array *count* grows instead.
 *
 * The paper's iso-energy rule ("scaled to consume the same energy per MAC")
 * is underspecified (energy/MAC is a per-format constant); two concrete
 * interpretations are provided and both are reported in EXPERIMENTS.md.
 */

#include "arch/energy_model.h"
#include "arch/systolic.h"

namespace mirage {
namespace arch {

/** Comparison scenario (Fig. 8 left vs right). */
enum class IsoScenario
{
    IsoEnergy,
    IsoArea,
};

/** Concrete interpretations of the paper's iso-energy scaling. */
enum class IsoEnergyPolicy
{
    /// SA MAC count such that n * pJ/MAC * f equals Mirage's compute power.
    PowerBudget,
    /// SA MAC count = Mirage optical MAC count * (e_Mirage / e_format).
    EnergyRatio,
};

const char *toString(IsoScenario s);

/**
 * Builds the scaled systolic deployment for one baseline format.
 *
 * @param scenario  iso-energy or iso-area.
 * @param policy    iso-energy interpretation (ignored for iso-area).
 * @param mirage    Mirage summary providing the power/area/MAC budgets.
 * @param format    baseline data format (Table II constants).
 * @param rows,cols fixed per-array geometry (16x32 in the paper).
 *
 * Fatal for iso-area with a format that has no published area (FMAC).
 */
SystolicConfig scaledSystolic(IsoScenario scenario, IsoEnergyPolicy policy,
                              const MirageSummary &mirage,
                              numerics::DataFormat format, int rows = 16,
                              int cols = 32);

} // namespace arch
} // namespace mirage

#endif // MIRAGE_ARCH_ISO_SCALING_H
