#ifndef MIRAGE_ARCH_CONFIG_H
#define MIRAGE_ARCH_CONFIG_H

/**
 * @file
 * Top-level Mirage accelerator configuration (paper Sec. IV-C and VI-A):
 * numerics (BFP + special moduli set), array geometry, clocks, device kit,
 * SRAM organization, and calibration constants for the digital circuitry.
 */

#include <cstdint>

#include "photonic/devices.h"
#include "photonic/noise_model.h"
#include "rns/moduli_set.h"

namespace mirage {
namespace arch {

/** On-chip SRAM organization (three arrays: activations/weights/gradients). */
struct SramConfig
{
    int num_arrays = 3;              ///< Activation, weight, gradient arrays.
    double array_mb = 8.0;           ///< Capacity per array [MB].
    double bank_kb = 32.0;           ///< Bank granularity.
    int interleave_factor = 10;      ///< Sub-arrays per RNS-MMVMU (Sec. IV-C).
    /// Dynamic access energy [pJ/byte] for 32 kB banks in 40 nm (calibrated
    /// once against the paper's Fig. 9 power share, then held fixed).
    double access_pj_per_byte = 0.48;
    /// Macro area density for the 40 nm SRAM compiler [mm^2/MB].
    double area_mm2_per_mb = 7.15;

    /** Total capacity across the three arrays [MB]. */
    double totalMb() const { return num_arrays * array_mb; }
};

/** Digital conversion-circuit constants (paper Sec. V-B2, TSMC 40 nm). */
struct DigitalCircuitSpec
{
    double bfp_fp_energy_pj = 1.32;    ///< Per FP<->BFP group conversion.
    double bfp_fp_area_um2 = 1318.4;
    double bns_rns_energy_pj = 0.17;   ///< Per forward conversion.
    double bns_rns_area_um2 = 231.7;
    double rns_bns_energy_pj = 0.48;   ///< Per reverse conversion (Hiasat).
    double rns_bns_area_um2 = 1545.8;
    double fp32_accum_energy_pj = 0.11; ///< FP32 accumulate per output.
};

/** Full accelerator configuration with the paper's defaults. */
struct MirageConfig
{
    // --- numerics -----------------------------------------------------
    int bm = 4;           ///< BFP mantissa bits.
    int moduli_k = 5;     ///< Special set {2^k-1, 2^k, 2^k+1}.

    // --- array geometry -------------------------------------------------
    int g = 16;           ///< MMUs per MDPU (horizontal size, = BFP group).
    int mdpu_rows = 32;   ///< MDPUs per MMVMU (vertical size).
    int num_arrays = 8;   ///< RNS-MMVMUs on the chip.

    // --- clocks -----------------------------------------------------------
    double photonic_clock_hz = 10e9; ///< One MVM per 0.1 ns.
    double digital_clock_hz = 1e9;   ///< 10-way interleaved (Sec. IV-C).

    // --- devices and noise --------------------------------------------
    photonic::DeviceKit devices;
    double snr_safety = 1.0;
    photonic::LossPolicy loss_policy = photonic::LossPolicy::AllThrough;

    // --- memory and digital circuits -------------------------------------
    SramConfig sram;
    DigitalCircuitSpec digital;
    int dac_bits_override = 0; ///< 0: per-modulus ceil(log2 m); else forced.
    /// ADC energy per conversion [J]; 0 derives it from the paper's cited
    /// 6-bit 24 GS/s part (the honest default). The paper's Fig. 9 shows a
    /// 1.1 % converter share that implies ~30 fJ/conversion — achievable
    /// with modern SAR FOMs but inconsistent with its citation; setting
    /// this to 30e-15 reproduces the paper's breakdown (EXPERIMENTS.md).
    double adc_energy_override_j = 0.0;

    /** The validated moduli set for this configuration. */
    rns::ModuliSet moduliSet() const;

    /** Fatal when the configuration violates Eq. (13) or is malformed. */
    void validate() const;

    /** Logical MACs per photonic cycle across the whole accelerator. */
    int64_t macsPerCycle() const
    {
        return static_cast<int64_t>(num_arrays) * mdpu_rows * g;
    }

    /** Peak logical MAC throughput [MAC/s]. */
    double peakMacsPerSecond() const
    {
        return static_cast<double>(macsPerCycle()) * photonic_clock_hz;
    }

    /** Photonic cycle time [s]. */
    double cycleTimeS() const { return 1.0 / photonic_clock_hz; }

    /** Phase-shifter reprogramming (tile load) time [s]. */
    double tileLoadTimeS() const
    {
        return devices.phase_shifter.reprogram_time_s;
    }
};

} // namespace arch
} // namespace mirage

#endif // MIRAGE_ARCH_CONFIG_H
