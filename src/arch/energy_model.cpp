#include "arch/energy_model.h"

#include <cmath>

#include "analog/converter_energy.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/units.h"
#include "photonic/link_budget.h"

namespace mirage {
namespace arch {

double
PowerBreakdown::total() const
{
    return laser_w + mrr_tuning_w + phase_shifter_w + dac_w + adc_w + tia_w +
           sram_w + bfp_conv_w + rns_conv_w + accum_w;
}

double
AreaBreakdown::total() const
{
    return photonic_mm2 + sram_mm2 + adc_mm2 + dac_mm2 + digital_mm2;
}

double
AreaBreakdown::electronicMm2() const
{
    return sram_mm2 + adc_mm2 + dac_mm2 + digital_mm2;
}

double
AreaBreakdown::stackedMm2() const
{
    return std::max(photonic_mm2, electronicMm2());
}

MirageEnergyModel::MirageEnergyModel(const MirageConfig &cfg,
                                     int64_t tile_stream_len)
    : cfg_(cfg), tile_stream_len_(tile_stream_len)
{
    cfg_.validate();
    MIRAGE_ASSERT(tile_stream_len_ >= 1, "stream length must be positive");
}

PowerBreakdown
MirageEnergyModel::peakPower() const
{
    PowerBreakdown p;
    const rns::ModuliSet set = cfg_.moduliSet();
    const double clock = cfg_.photonic_clock_hz;
    const int64_t arrays = cfg_.num_arrays;
    const int64_t rows = cfg_.mdpu_rows;
    // Steady-state tile period: reprogram plus the streaming window.
    const double tile_period_s =
        cfg_.tileLoadTimeS() +
        static_cast<double>(tile_stream_len_) * cfg_.cycleTimeS();

    const analog::ConverterSpec adc_ref = analog::mirageAdc6();
    const analog::ConverterSpec dac_ref = analog::mirageDac6();

    for (size_t mi = 0; mi < set.count(); ++mi) {
        const uint64_t m = set.modulus(mi);
        const int bits = cfg_.dac_bits_override > 0 ? cfg_.dac_bits_override
                                                    : set.converterBits(mi);
        const photonic::LinkBudget lb = photonic::computeLinkBudget(
            cfg_.devices, m, set.converterBits(mi), cfg_.g, clock,
            cfg_.snr_safety, cfg_.loss_policy);

        const double channels = static_cast<double>(arrays * rows);
        p.laser_w += channels * lb.laser_wall_w;

        // Two MRR switches per binary digit per MMU (Fig. 3c).
        p.mrr_tuning_w += channels * cfg_.g * 2.0 *
                          set.converterBits(mi) *
                          cfg_.devices.mrr.switch_power_w;

        // Two quadrature ADCs per MDPU (Sec. IV-A3), converting every
        // photonic cycle; energy per conversion from the 6-bit anchor
        // scaled by the Murmann 2x/bit rule, unless overridden.
        const double adc_e =
            cfg_.adc_energy_override_j > 0.0
                ? cfg_.adc_energy_override_j
                : adc_ref.scaledToBits(set.converterBits(mi))
                      .energyPerConversion();
        p.adc_w += channels * 2.0 * adc_e * clock;

        // One TIA block per MDPU detection chain (Fig. 9 calibration).
        p.tia_w += channels * cfg_.devices.receiver.tia_energy_per_bit_j *
                   set.converterBits(mi) * clock;

        // Weight DACs: rows x g conversions per modulus per tile load,
        // amortized over the tile period.
        const double dac_e = dac_ref.scaledToBits(bits).energyPerConversion();
        p.dac_w += static_cast<double>(arrays) * rows * cfg_.g * dac_e /
                   tile_period_s;

        // Phase-shifter electro-optic tuning: a few fJ per reprogram.
        p.phase_shifter_w += static_cast<double>(arrays) * rows * cfg_.g *
                             cfg_.devices.phase_shifter.tuning_energy_j /
                             tile_period_s;
    }

    // --- digital circuitry, per RNS-MMVMU per photonic cycle -----------
    const double cycles_per_s = static_cast<double>(arrays) * clock;
    const DigitalCircuitSpec &d = cfg_.digital;

    // FP->BFP on the streamed input group; BFP->FP on output groups.
    const double bfp_groups_per_cycle =
        1.0 + static_cast<double>(rows) / cfg_.g;
    p.bfp_conv_w = cycles_per_s * bfp_groups_per_cycle * d.bfp_fp_energy_pj *
                   units::kPico;

    // Forward conversion of g streamed inputs; reverse conversion of `rows`
    // outputs; weight forward conversions amortized per tile.
    const double fwd_per_cycle = static_cast<double>(cfg_.g);
    const double rev_per_cycle = static_cast<double>(rows);
    p.rns_conv_w = cycles_per_s * (fwd_per_cycle * d.bns_rns_energy_pj +
                                   rev_per_cycle * d.rns_bns_energy_pj) *
                   units::kPico;
    p.rns_conv_w += static_cast<double>(arrays) * rows * cfg_.g *
                    d.bns_rns_energy_pj * units::kPico / tile_period_s;

    // FP32 accumulation of partial outputs (dataflow step 9).
    p.accum_w = cycles_per_s * rows * d.fp32_accum_energy_pj * units::kPico;

    // --- SRAM traffic ------------------------------------------------
    // Per array per cycle: read the g-element input vector (broadcast to
    // all moduli), read + write `rows` FP32 partial outputs.
    const double bytes_per_cycle = 4.0 * (cfg_.g + 2.0 * rows);
    const double tile_bytes = 4.0 * static_cast<double>(rows) * cfg_.g;
    p.sram_w = (cycles_per_s * bytes_per_cycle +
                static_cast<double>(arrays) * tile_bytes / tile_period_s) *
               cfg_.sram.access_pj_per_byte * units::kPico;
    return p;
}

AreaBreakdown
MirageEnergyModel::area() const
{
    AreaBreakdown a;
    const rns::ModuliSet set = cfg_.moduliSet();
    const int64_t arrays = cfg_.num_arrays;
    const int64_t rows = cfg_.mdpu_rows;

    // Photonic layer: every MMU occupies its horizontal length times one
    // waveguide row pitch (MRR diameter plus clearance).
    const double row_pitch_mm = cfg_.devices.mrr.diameterMm() + 0.005;
    for (size_t mi = 0; mi < set.count(); ++mi) {
        const double mmu_mm2 =
            photonic::mmuLengthMm(cfg_.devices, set.modulus(mi),
                                  set.converterBits(mi)) *
            row_pitch_mm;
        a.photonic_mm2 +=
            static_cast<double>(arrays * rows) * cfg_.g * mmu_mm2;
    }

    a.sram_mm2 = cfg_.sram.totalMb() * cfg_.sram.area_mm2_per_mb;

    const analog::ConverterSpec adc_ref = analog::mirageAdc6();
    for (size_t mi = 0; mi < set.count(); ++mi) {
        a.adc_mm2 += static_cast<double>(arrays * rows) * 2.0 *
                     adc_ref.scaledToBits(set.converterBits(mi)).area_mm2;
    }

    // One weight DAC per (array, row), shared across the moduli.
    a.dac_mm2 = static_cast<double>(arrays * rows) *
                analog::mirageDac6()
                    .scaledToBits(cfg_.dac_bits_override > 0
                                      ? cfg_.dac_bits_override
                                      : set.maxConverterBits())
                    .area_mm2;

    // Interleaved digital conversion circuits (10 copies per array).
    const DigitalCircuitSpec &d = cfg_.digital;
    const double per_copy_um2 =
        d.bfp_fp_area_um2 + d.bns_rns_area_um2 + d.rns_bns_area_um2;
    a.digital_mm2 = static_cast<double>(arrays) * cfg_.sram.interleave_factor *
                    per_copy_um2 * 1e-6;
    return a;
}

MirageSummary
MirageEnergyModel::summary() const
{
    MirageSummary s;
    s.power = peakPower();
    s.area = area();
    s.peak_macs_per_s = cfg_.peakMacsPerSecond();
    s.photonic_clock_hz = cfg_.photonic_clock_hz;
    s.pj_per_mac = s.power.computeTotal() / s.peak_macs_per_s / units::kPico;
    return s;
}

double
MirageEnergyModel::gemmEnergyJ(const GemmPerf &perf, bool include_sram) const
{
    MIRAGE_ASSERT(perf.supported, "cannot charge an unsupported dataflow");
    const PowerBreakdown p = peakPower();
    const double power = include_sram ? p.total() : p.computeTotal();
    return power * perf.time_s;
}

double
MirageEnergyModel::programmingEnergyPerElementJ() const
{
    const rns::ModuliSet set = cfg_.moduliSet();
    const analog::ConverterSpec dac_ref = analog::mirageDac6();
    double e = 0.0;
    for (size_t mi = 0; mi < set.count(); ++mi) {
        const int bits = cfg_.dac_bits_override > 0 ? cfg_.dac_bits_override
                                                    : set.converterBits(mi);
        e += dac_ref.scaledToBits(bits).energyPerConversion();
        e += cfg_.devices.phase_shifter.tuning_energy_j;
        e += cfg_.digital.bns_rns_energy_pj * units::kPico;
    }
    return e;
}

double
MirageEnergyModel::programmingEnergyJ(int64_t weight_elements) const
{
    MIRAGE_ASSERT(weight_elements >= 0, "negative weight element count");
    return static_cast<double>(weight_elements) *
           programmingEnergyPerElementJ();
}

} // namespace arch
} // namespace mirage
