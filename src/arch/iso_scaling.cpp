#include "arch/iso_scaling.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mirage {
namespace arch {

const char *
toString(IsoScenario s)
{
    switch (s) {
      case IsoScenario::IsoEnergy: return "iso-energy";
      case IsoScenario::IsoArea: return "iso-area";
    }
    return "?";
}

SystolicConfig
scaledSystolic(IsoScenario scenario, IsoEnergyPolicy policy,
               const MirageSummary &mirage, numerics::DataFormat format,
               int rows, int cols)
{
    SystolicConfig cfg;
    cfg.spec = systolicSpec(format);
    cfg.rows = rows;
    cfg.cols = cols;

    double mac_units = 0.0;
    switch (scenario) {
      case IsoScenario::IsoArea:
        if (cfg.spec.mm2_per_mac <= 0) {
            MIRAGE_FATAL("format ", numerics::toString(format),
                         " has no published area per MAC; iso-area scaling "
                         "is undefined (the paper omits it too)");
        }
        mac_units = mirage.area.stackedMm2() / cfg.spec.mm2_per_mac;
        break;
      case IsoScenario::IsoEnergy:
        switch (policy) {
          case IsoEnergyPolicy::PowerBudget:
            mac_units = mirage.power.computeTotal() /
                        (cfg.spec.energyPerMacJ() * cfg.spec.clock_hz);
            break;
          case IsoEnergyPolicy::EnergyRatio:
            mac_units = mirage.macUnits() *
                        (mirage.pj_per_mac / cfg.spec.pj_per_mac);
            break;
        }
        break;
    }

    const double per_array = static_cast<double>(rows) * cols;
    cfg.num_arrays = std::max<int>(
        1, static_cast<int>(std::llround(mac_units / per_array)));
    return cfg;
}

} // namespace arch
} // namespace mirage
