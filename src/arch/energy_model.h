#ifndef MIRAGE_ARCH_ENERGY_MODEL_H
#define MIRAGE_ARCH_ENERGY_MODEL_H

/**
 * @file
 * Power, energy and area model for the Mirage accelerator (paper Sec. V-B,
 * Fig. 9, Table II). Every component is derived from the paper's published
 * device constants; the SRAM access energy is the one calibrated constant
 * (see SramConfig). "Peak" assumes fully-pipelined streaming with a
 * characteristic tile residency (stream length) for the amortized parts
 * (DAC programming, weight traffic).
 */

#include "arch/config.h"
#include "arch/perf_model.h"

namespace mirage {
namespace arch {

/** Power by component [W] (Fig. 9 left). */
struct PowerBreakdown
{
    double laser_w = 0.0;
    double mrr_tuning_w = 0.0;
    double phase_shifter_w = 0.0;
    double dac_w = 0.0;
    double adc_w = 0.0;
    double tia_w = 0.0;
    double sram_w = 0.0;
    double bfp_conv_w = 0.0;
    double rns_conv_w = 0.0;
    double accum_w = 0.0;

    /** Total including SRAM. */
    double total() const;

    /**
     * Total excluding SRAM — the component scope the paper uses for
     * Table II's pJ/MAC and Fig. 8's Mirage energy (Sec. VI-C).
     */
    double computeTotal() const { return total() - sram_w; }
};

/** Area by component [mm^2] (Fig. 9 right). */
struct AreaBreakdown
{
    double photonic_mm2 = 0.0;
    double sram_mm2 = 0.0;
    double adc_mm2 = 0.0;
    double dac_mm2 = 0.0;
    double digital_mm2 = 0.0; ///< Conversion circuits and accumulators.

    double total() const;

    /** Electronic chiplet area (everything but the photonic layer). */
    double electronicMm2() const;

    /**
     * Footprint after 3D integration: the larger chiplet (paper reports
     * 242.7 mm^2 for the electronic chiplet).
     */
    double stackedMm2() const;
};

/** Scalar summary used by the iso-scaling policies and Table II. */
struct MirageSummary
{
    PowerBreakdown power;
    AreaBreakdown area;
    double peak_macs_per_s = 0.0;
    double photonic_clock_hz = 0.0;
    double pj_per_mac = 0.0; ///< computeTotal() / peak MAC rate, in pJ.

    /** Concurrent optical MAC units (rate / clock). */
    double macUnits() const { return peak_macs_per_s / photonic_clock_hz; }
};

/** Mirage component power/area/energy model. */
class MirageEnergyModel
{
  public:
    /**
     * @param cfg              validated accelerator configuration.
     * @param tile_stream_len  characteristic MVMs between tile reloads,
     *                         used to amortize DAC/weight-load costs
     *                         (batch size 256 in the paper's experiments).
     */
    explicit MirageEnergyModel(const MirageConfig &cfg,
                               int64_t tile_stream_len = 256);

    /** Peak power by component (Fig. 9 left). */
    PowerBreakdown peakPower() const;

    /** Area by component (Fig. 9 right). */
    AreaBreakdown area() const;

    /** Full summary (power, area, pJ/MAC, peak rate). */
    MirageSummary summary() const;

    /**
     * Energy of a workload GEMM [J]: compute power times busy time, plus
     * per-tile programming energy.
     * @param include_sram charge SRAM traffic as well (Fig. 9 scope) or
     *                     not (Fig. 8 / Table II scope).
     */
    double gemmEnergyJ(const GemmPerf &perf, bool include_sram) const;

    /**
     * Energy [J] of programming one stationary weight value into an MMVMU:
     * per residue channel, one weight-DAC conversion, one phase-shifter
     * electro-optic reprogram, and one forward BNS->RNS conversion. This
     * is the per-element cost the serving weight cache amortizes across
     * requests that reuse an already-programmed model.
     */
    double programmingEnergyPerElementJ() const;

    /** Programming energy [J] for `weight_elements` stationary weights. */
    double programmingEnergyJ(int64_t weight_elements) const;

    const MirageConfig &config() const { return cfg_; }

  private:
    MirageConfig cfg_;
    int64_t tile_stream_len_;
};

} // namespace arch
} // namespace mirage

#endif // MIRAGE_ARCH_ENERGY_MODEL_H
