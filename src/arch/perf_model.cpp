#include "arch/perf_model.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace mirage {
namespace arch {

const char *
toString(Dataflow df)
{
    switch (df) {
      case Dataflow::DF1: return "DF1";
      case Dataflow::DF2: return "DF2";
      case Dataflow::DF3: return "DF3";
    }
    return "?";
}

const char *
toString(DataflowPolicy p)
{
    switch (p) {
      case DataflowPolicy::FixedDF1: return "DF1";
      case DataflowPolicy::FixedDF2: return "DF2";
      case DataflowPolicy::FixedDF3: return "DF3";
      case DataflowPolicy::OPT1: return "OPT1";
      case DataflowPolicy::OPT2: return "OPT2";
    }
    return "?";
}

MiragePerfModel::MiragePerfModel(const MirageConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

GemmPerf
MiragePerfModel::gemm(const GemmShape &shape, Dataflow df, int64_t count) const
{
    MIRAGE_ASSERT(count >= 1, "GEMM count must be positive");
    GemmPerf perf;
    perf.macs = count * shape.macs();

    if (df == Dataflow::DF3) {
        // Output stationarity would reprogram the phase shifters every
        // cycle, throttling the core to the shifter bandwidth (Sec. VI-A3).
        perf.supported = false;
        return perf;
    }

    // DF2 keeps the second operand stationary, which is DF1 on the
    // transposed problem: C^T = B^T A^T.
    const GemmShape s = (df == Dataflow::DF1) ? shape : shape.transposed();

    const int64_t rows = cfg_.mdpu_rows;
    const int64_t g = cfg_.g;
    const int64_t arrays = cfg_.num_arrays;

    const int64_t row_tiles = ceilDiv(s.m, rows);
    const int64_t depth_tiles = ceilDiv(s.k, g);
    const int64_t tiles = count * row_tiles * depth_tiles;
    const int64_t stream_per_tile = s.n;

    const int64_t waves = ceilDiv(tiles, arrays);
    perf.tiles = tiles;
    perf.stream_cycles = waves * stream_per_tile;
    perf.time_s = static_cast<double>(waves) *
                  (cfg_.tileLoadTimeS() +
                   static_cast<double>(stream_per_tile) * cfg_.cycleTimeS());

    const double allocated = static_cast<double>(waves) * arrays * rows * g *
                             static_cast<double>(stream_per_tile);
    perf.spatial_util = static_cast<double>(perf.macs) / allocated;
    return perf;
}

double
MiragePerfModel::programmingTimeS(int64_t weight_elements) const
{
    MIRAGE_ASSERT(weight_elements >= 0, "negative weight element count");
    if (weight_elements == 0)
        return 0.0;
    const int64_t per_tile =
        static_cast<int64_t>(cfg_.mdpu_rows) * cfg_.g;
    const int64_t tiles = ceilDiv(weight_elements, per_tile);
    const int64_t waves = ceilDiv(tiles, static_cast<int64_t>(cfg_.num_arrays));
    return static_cast<double>(waves) * cfg_.tileLoadTimeS();
}

std::pair<Dataflow, GemmPerf>
MiragePerfModel::best(const GemmShape &shape, int64_t count) const
{
    const GemmPerf df1 = gemm(shape, Dataflow::DF1, count);
    const GemmPerf df2 = gemm(shape, Dataflow::DF2, count);
    if (df2.time_s < df1.time_s)
        return {Dataflow::DF2, df2};
    return {Dataflow::DF1, df1};
}

} // namespace arch
} // namespace mirage
