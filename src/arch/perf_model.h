#ifndef MIRAGE_ARCH_PERF_MODEL_H
#define MIRAGE_ARCH_PERF_MODEL_H

/**
 * @file
 * Analytic latency/utilization model for Mirage's photonic arrays
 * (paper Sec. IV-C, VI-A2/3). GEMMs are tiled onto `num_arrays` parallel
 * RNS-MMVMUs; every tile costs one phase-shifter reprogram (5 ns) and then
 * streams one MVM per photonic cycle (0.1 ns).
 *
 * Dataflows (Sec. VI-A3): DF1 keeps the first GEMM operand stationary in
 * the phase shifters, DF2 the second; DF3 (output stationary) would require
 * reprogramming shifters every cycle and is not supported on Mirage.
 */

#include <cstdint>
#include <utility>

#include "arch/config.h"
#include "arch/gemm_shape.h"

namespace mirage {
namespace arch {

/** Dataflow choices (paper renames weight/input/output stationary). */
enum class Dataflow
{
    DF1, ///< First operand stationary (weight stationary in the forward pass).
    DF2, ///< Second operand stationary (input stationary).
    DF3, ///< Output stationary (systolic arrays only).
};

/** Dataflow-selection policies evaluated in Fig. 7b. */
enum class DataflowPolicy
{
    FixedDF1,
    FixedDF2,
    FixedDF3,
    OPT1, ///< Best fixed dataflow per training-op type across all layers.
    OPT2, ///< Best dataflow per GEMM, chosen per layer (offline, analytic).
};

const char *toString(Dataflow df);
const char *toString(DataflowPolicy p);

/** Timing result for one (possibly repeated) GEMM. */
struct GemmPerf
{
    bool supported = true;     ///< False for DF3 on Mirage.
    double time_s = 0.0;       ///< End-to-end latency.
    int64_t tiles = 0;         ///< Stationary-tile loads (across all repeats).
    int64_t stream_cycles = 0; ///< Streaming cycles summed over tile waves.
    int64_t macs = 0;          ///< Useful multiply-accumulates.
    double spatial_util = 0.0; ///< Useful MACs / allocated MAC slots.
};

/** Mirage's analytic performance model. */
class MiragePerfModel
{
  public:
    explicit MiragePerfModel(const MirageConfig &cfg);

    /**
     * Latency of `count` identical GEMMs under the given dataflow.
     * DF3 returns supported = false (Sec. VI-A3).
     */
    GemmPerf gemm(const GemmShape &shape, Dataflow df,
                  int64_t count = 1) const;

    /** The better of DF1/DF2 for this GEMM. */
    std::pair<Dataflow, GemmPerf> best(const GemmShape &shape,
                                       int64_t count = 1) const;

    /**
     * Time [s] to program `weight_elements` stationary weight values into
     * the phase shifters: elements fill (mdpu_rows x g) tiles, `num_arrays`
     * tiles program in parallel, and each wave costs one reprogram latency.
     * This is the cold-start cost the serving weight cache avoids on a hit.
     */
    double programmingTimeS(int64_t weight_elements) const;

    const MirageConfig &config() const { return cfg_; }

  private:
    MirageConfig cfg_;
};

} // namespace arch
} // namespace mirage

#endif // MIRAGE_ARCH_PERF_MODEL_H
