#include "arch/gemm_shape.h"

#include "common/logging.h"

namespace mirage {
namespace arch {

const char *
toString(TrainingOp op)
{
    switch (op) {
      case TrainingOp::Forward: return "Fwd";
      case TrainingOp::InputGrad: return "I.Grad";
      case TrainingOp::WeightGrad: return "W.Grad";
    }
    return "?";
}

std::array<GemmShape, 3>
trainingGemms(int64_t out_features, int64_t in_features, int64_t n)
{
    MIRAGE_ASSERT(out_features > 0 && in_features > 0 && n > 0,
                  "bad layer dimensions");
    return {GemmShape{out_features, in_features, n},
            GemmShape{in_features, out_features, n},
            GemmShape{out_features, n, in_features}};
}

GemmShape
trainingGemm(TrainingOp op, int64_t out_features, int64_t in_features,
             int64_t n)
{
    const auto all = trainingGemms(out_features, in_features, n);
    switch (op) {
      case TrainingOp::Forward: return all[0];
      case TrainingOp::InputGrad: return all[1];
      case TrainingOp::WeightGrad: return all[2];
    }
    MIRAGE_PANIC("unknown training op");
}

} // namespace arch
} // namespace mirage
