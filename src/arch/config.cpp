#include "arch/config.h"

#include "common/logging.h"

namespace mirage {
namespace arch {

rns::ModuliSet
MirageConfig::moduliSet() const
{
    return rns::ModuliSet::special(moduli_k);
}

void
MirageConfig::validate() const
{
    if (bm < 1 || bm > 15)
        MIRAGE_FATAL("bm out of range: ", bm);
    if (g < 1 || mdpu_rows < 1 || num_arrays < 1)
        MIRAGE_FATAL("array geometry must be positive");
    if (photonic_clock_hz <= 0 || digital_clock_hz <= 0)
        MIRAGE_FATAL("clock rates must be positive");
    const rns::ModuliSet set = moduliSet();
    if (!set.canHoldDotProduct(bm, g)) {
        MIRAGE_FATAL("moduli set k=", moduli_k, " (log2 M = ",
                     set.log2DynamicRange(),
                     ") violates Eq. (13) for bm=", bm, ", g=", g,
                     "; increase k or reduce bm/g");
    }
    const double interleave_needed = photonic_clock_hz / digital_clock_hz;
    if (sram.interleave_factor < interleave_needed) {
        MIRAGE_FATAL("interleave factor ", sram.interleave_factor,
                     " cannot bridge ", photonic_clock_hz / 1e9, " GHz photonic vs ",
                     digital_clock_hz / 1e9, " GHz digital clocks");
    }
}

} // namespace arch
} // namespace mirage
